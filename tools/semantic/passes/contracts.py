"""Backend contract conformance and the backend-capability matrix.

BasicRealTimeEngine selects optional fast paths with
`if constexpr (requires { g.hook(...); })`: a backend that renames an
implementation away from a probed hook does not fail to compile — it
silently drops to the slow path.  This pass turns that silence into CI
failure:

  backend-contract        an engine backend (engine_backend = true in
                          layers.toml) is missing a member of the
                          unconditional engine surface, or any backend is
                          missing a capability it declares.
  backend-capability      a backend defines a probed hook it does not
                          declare in layers.toml (undeclared capability:
                          the config no longer describes reality, and
                          the next rename will not be caught).
  contract-probe-dangling a `requires`-probe in the source probes a
                          member name that no configured backend defines
                          and that is not in the declared probe list —
                          i.e. the probe can never fire again (typically
                          the aftermath of a rename).

It also emits the backend-capability matrix (--matrix) that DESIGN.md
§13 documents: one row per backend, one column per probed hook.
"""

from . import add
from .. import ast_lite


def run(model, config, findings):
    sem = config.get("semantic", {})
    contract = sem.get("contract", {})
    required = list(contract.get("engine_required", ()))
    probed = list(contract.get("probed", ()))
    backends_cfg = sem.get("backends", {})

    matrix = {"backends": {}, "probed": probed,
              "engine_required": required}
    for name, bcfg in sorted(backends_cfg.items()):
        ci = model.find_class(name)
        row = {"header": bcfg.get("header", ""),
               "engine_backend": bool(bcfg.get("engine_backend")),
               "declared": list(bcfg.get("capabilities", ())),
               "detected": [], "missing_required": [], "found": ci
               is not None}
        matrix["backends"][name] = row
        if ci is None:
            add(findings, _cfg_file(model), 1, "backend-contract",
                f"configured backend '{name}' "
                f"({bcfg.get('header', '?')}) was not found in the "
                f"parsed sources")
            continue
        surface = ci.member_names()
        row["detected"] = sorted(p for p in probed if p in surface)
        # Unconditional engine surface.
        if row["engine_backend"]:
            missing = [m for m in required if m not in surface]
            row["missing_required"] = missing
            for m in missing:
                add(findings, ci.file, ci.line, "backend-contract",
                    f"engine backend '{name}' is missing required member "
                    f"'{m}' (unconditional use in BasicRealTimeEngine; "
                    f"see layers.toml [semantic.contract])")
        # Declared capabilities must exist...
        for cap in row["declared"]:
            if cap not in surface:
                add(findings, ci.file, ci.line, "backend-contract",
                    f"backend '{name}' declares capability '{cap}' in "
                    f"layers.toml but defines no such member; the "
                    f"engine's `if constexpr (requires ...)` probe now "
                    f"silently takes the fallback path")
        # ...and existing probed hooks must be declared.
        for cap in row["detected"]:
            if cap not in row["declared"]:
                add(findings, ci.file, ci.line, "backend-capability",
                    f"backend '{name}' defines probed hook '{cap}' but "
                    f"does not declare it in layers.toml "
                    f"[semantic.backends.{name}]; declare it so a future "
                    f"rename fails CI instead of silently dropping the "
                    f"fast path")

    # Probes present in the source must probe declared hook names.
    probes_seen = {}
    for fm in model.files.values():
        if not fm.rel.startswith("src/"):
            continue
        for br in ast_lite.iter_requires_branches(fm.tokens, 0,
                                                  len(fm.tokens)):
            for p in br.probes:
                probes_seen.setdefault(p, (fm, br.line))
    for p, (fm, line) in sorted(probes_seen.items()):
        if p in probed:
            continue
        defined_somewhere = any(
            p in model.find_class(b).member_names()
            for b in backends_cfg if model.find_class(b) is not None)
        if not defined_somewhere:
            add(findings, fm, line, "contract-probe-dangling",
                f"`requires`-probe for member '{p}' matches no configured "
                f"backend and is not in the declared probe list "
                f"(layers.toml [semantic.contract] probed); the probed "
                f"fast path is dead — was the hook renamed?")
        else:
            add(findings, fm, line, "contract-probe-dangling",
                f"`requires`-probe for member '{p}' is not declared in "
                f"layers.toml [semantic.contract] probed; declare it so "
                f"backend conformance covers this hook")
    matrix["probes_seen"] = sorted(probes_seen)
    model.capability_matrix = matrix
    return matrix


def _cfg_file(model):
    for fm in model.files.values():
        return fm
    raise RuntimeError("empty model")


def format_matrix(matrix):
    """Render the capability matrix as a markdown table."""
    probed = matrix["probed"]
    lines = ["| backend | engine | " + " | ".join(probed) + " |",
             "|---|---|" + "---|" * len(probed)]
    for name, row in sorted(matrix["backends"].items()):
        cells = [name, "yes" if row["engine_backend"] else "no"]
        for p in probed:
            if p in row["detected"]:
                mark = "yes" if p in row["declared"] else "yes (undeclared)"
            else:
                mark = "declared, MISSING" if p in row["declared"] else "-"
            cells.append(mark)
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
