"""Epoch/snapshot lifetime checker (pipeline one-epoch-ahead invariant).

A SnapshotView is a cheap copy that stays valid only until the next
SnapshotStore::publish (DESIGN.md §11).  Three rules police that
contract:

  snapshot-view-escape   a view-typed local leaves its producing scope:
                         stored into a member, captured by a lambda, or
                         returned.  The engine's publish_epoch capture is
                         the one sanctioned site (the engine joins the
                         in-flight compute round before every publish)
                         and carries an audited allow() pragma.
  view-invalidated-use   publish()/a live-store mutation runs between a
                         view's creation and its last use in the same
                         function — the classic stale-view bug the
                         paper's pipelined mode must never hit.
  compute-reads-live     the callable registered via set_compute touches
                         mutable adjacency state instead of its
                         SnapshotView argument; the compute stage runs
                         overlapped with the next epoch's updates, so
                         any live read is a data race.
"""

from . import add
from .. import ast_lite


def run(model, config, findings):
    cfg = config.get("semantic", {}).get("lifetime", {})
    view_types = set(cfg.get("view_types", ("SnapshotView",)))
    producers = set(cfg.get("producers", ()))
    invalidators = set(cfg.get("invalidators", ()))
    mutators = set(cfg.get("live_mutators", ()))
    registrars = set(cfg.get("compute_registrars", ()))

    for fn in model.functions:
        if fn.body is None or not fn.file.rel.startswith("src/"):
            continue
        toks = fn.file.tokens
        lo, hi = fn.body
        views = _view_locals(toks, lo, hi, view_types, producers)
        if views:
            _check_escapes(model, fn, views, findings)
            _check_invalidated(fn, views, invalidators, mutators, findings)
        _check_compute(fn, registrars, mutators, view_types, findings)


def _view_locals(toks, lo, hi, view_types, producers):
    """Locals holding a snapshot view: typed as one, or `auto` initialized
    from a producer call (snapshots_.view())."""
    out = []
    for v in ast_lite.iter_locals(toks, lo, hi):
        if v.type_base in view_types:
            out.append(v)
        elif v.type_base == "auto":
            for c in ast_lite.iter_calls(toks, v.init_lo, v.init_hi + 1):
                if c.name in producers and c.receiver is not None:
                    out.append(v)
                    break
    return out


def _last_use(toks, hi, name, after):
    last = -1
    for k in range(after, hi):
        t = toks[k]
        if t.kind == "id" and t.text == name:
            last = k
    return last


def _check_escapes(model, fn, views, findings):
    toks = fn.file.tokens
    lo, hi = fn.body
    names = {v.name: v for v in views}
    # Lambda capture: by name, or a default capture whose body uses it.
    for lam in ast_lite.iter_lambdas(toks, lo, hi):
        cap_ids = {toks[k].text for k in range(lam.cap_lo, lam.cap_hi)
                   if toks[k].kind == "id"}
        cap_default = any(toks[k].kind == "punct" and
                          toks[k].text in ("&", "=")
                          for k in range(lam.cap_lo, lam.cap_hi))
        body_ids = {toks[k].text for k in range(lam.body_lo, lam.body_hi)
                    if toks[k].kind == "id"}
        for name, v in names.items():
            if v.decl_idx >= lam.body_lo:
                continue            # declared after (or inside) the lambda
            if name in cap_ids or (cap_default and name in body_ids):
                add(findings, fn.file, toks[lam.cap_lo].line
                    if lam.cap_lo < len(toks) else lam.line,
                    "snapshot-view-escape",
                    f"SnapshotView '{name}' (declared line {v.line}) "
                    f"captured by a lambda in '{fn.qual_name}'; the view "
                    f"is only valid until the next publish()")
    k = lo
    while k < hi:
        t = toks[k]
        if t.kind == "id" and t.text in names:
            v = names[t.text]
            prev = toks[k - 1] if k > lo else None
            nxt = toks[k + 1] if k + 1 < hi else None
            # return <view>;  (member reads like `return view.epoch;`
            # do not escape the view itself)
            if prev is not None and prev.kind == "id" and \
                    prev.text == "return" and k != v.decl_idx and \
                    nxt is not None and nxt.kind == "punct" and \
                    nxt.text == ";":
                add(findings, fn.file, t.line, "snapshot-view-escape",
                    f"SnapshotView '{t.text}' returned from "
                    f"'{fn.qual_name}'; the view is only valid until the "
                    f"next publish()")
            # member_ = <view>;
            if prev is not None and prev.kind == "punct" and \
                    prev.text == "=" and k - 2 >= lo and \
                    toks[k - 2].kind == "id" and k != v.decl_idx:
                target = toks[k - 2].text
                if fn.cls is not None and target in fn.cls.fields:
                    add(findings, fn.file, t.line, "snapshot-view-escape",
                        f"SnapshotView '{t.text}' stored into member "
                        f"'{target}' of {fn.cls.name} in '{fn.qual_name}'; "
                        f"the view is only valid until the next publish()")
        k += 1


def _check_invalidated(fn, views, invalidators, mutators, findings):
    toks = fn.file.tokens
    lo, hi = fn.body
    watched = invalidators | mutators
    for v in views:
        last = _last_use(toks, hi, v.name, v.init_hi)
        if last < 0:
            continue
        for c in ast_lite.iter_calls(toks, v.init_hi, last):
            if c.name in watched and c.receiver is not None and \
                    c.receiver != v.name:
                kind = "invalidates" if c.name in invalidators \
                    else "mutates live graph state under"
                add(findings, fn.file, c.line, "view-invalidated-use",
                    f"'{c.receiver}.{c.name}()' {kind} SnapshotView "
                    f"'{v.name}' (declared line {v.line}) which is still "
                    f"used at line {toks[last].line} in '{fn.qual_name}'")


def _check_compute(fn, registrars, mutators, view_types, findings):
    toks = fn.file.tokens
    lo, hi = fn.body
    for c in ast_lite.iter_calls(toks, lo, hi):
        if c.name not in registrars:
            continue
        for lam in ast_lite.iter_lambdas(toks, c.arg_lo, c.arg_hi + 1):
            # Parameter names of view type are the sanctioned input.
            for inner in ast_lite.iter_calls(toks, lam.body_lo,
                                             lam.body_hi):
                if inner.name in mutators:
                    add(findings, fn.file, inner.line,
                        "compute-reads-live",
                        f"compute callable registered via '{c.name}()' "
                        f"calls live-store mutator '{inner.name}()'; the "
                        f"compute stage overlaps the next epoch's updates "
                        f"and must only read its SnapshotView argument")
