"""Template-aware hot-path escape analysis with per-backend attribution.

Walks from the [hot_paths] roots in layers.toml through the call graph,
but — unlike the line-regex walk in igs_analyzer — resolves member calls
through the *types* of their receivers.  When a receiver's type is a
template parameter that stands for a graph-store backend (engine.cc's
explicit instantiations, or the configured backend list for uninstantiated
kernels), the walk forks once per backend, `if constexpr (requires ...)`
branches are pruned against that backend's real member surface, and every
finding names the backend whose instantiation reaches it.

Rules (shared IDs with igs_lint/igs_analyzer so existing audited pragmas
suppress all three tools): hot-path-alloc, hot-path-block, hot-path-throw,
plus hot-path-virtual (virtual dispatch on the hot path — this repo keeps
its kernels devirtualized by construction, so any hit is a regression).
"""

import fnmatch

from . import add
from .. import ast_lite

ALLOC_CALLS = frozenset({
    "push_back", "emplace_back", "resize", "reserve", "insert", "emplace",
    "append", "make_unique", "make_shared", "malloc", "calloc", "realloc",
    "strdup",
})
ALLOC_TYPES = frozenset({"unordered_map", "unordered_set"})
BLOCK_IDS = frozenset({
    "MutexLock", "mutex", "recursive_mutex", "timed_mutex", "shared_mutex",
    "lock_guard", "unique_lock", "scoped_lock", "condition_variable",
    "condition_variable_any",
})
BLOCK_CALLS = frozenset({"wait", "wait_for", "wait_until", "sleep_for",
                         "sleep_until"})


def run(model, config, findings):
    cfg = config.get("hot_paths", {})
    sem = config.get("semantic", {})
    stop = set(cfg.get("stop", ()))
    graph_params = set(sem.get("graph_param_names", ()))
    backends = {}
    for name in sem.get("backends", {}):
        ci = model.find_class(name)
        if ci is not None:
            backends[name] = ci

    roots = _root_functions(model, cfg.get("roots", ()))
    # Instantiation-derived bindings: template class X<Backend> binds X's
    # first graph-ish template param to Backend for members of X.
    inst_bindings = {}
    for inst in model.instantiations:
        ci = model.find_class(inst.class_name)
        if ci is None or not ci.template_params:
            continue
        for arg in inst.args:
            arg_ci = model.find_class(arg.split("<")[0])
            if arg_ci is not None and arg_ci.name in backends:
                inst_bindings.setdefault(ci.name, set()).add(arg_ci.name)

    seen = set()
    reached = set()     # (function key, backend) pairs, exported for tags
    work = []
    for fn in roots:
        for binding in _seed_bindings(fn, graph_params, backends,
                                      inst_bindings):
            work.append((fn, binding, _label(binding)))
    while work:
        fn, binding, backend = work.pop()
        key = (fn.key, tuple(sorted(binding.items())), backend)
        if key in seen or fn.body is None:
            continue
        seen.add(key)
        reached.add((fn.key, backend))
        if not fn.file.rel.startswith("src/"):
            continue
        dead = _dead_ranges(fn, binding, backends)
        _scan_body(model, fn, binding, backend, dead, findings)
        for callee, callee_binding in _callees(model, fn, binding,
                                               backends, dead,
                                               graph_params):
            if callee.name in stop:
                continue
            work.append((callee, callee_binding,
                         backend or _label(callee_binding)))
    model.hot_reached = reached
    return reached


def _root_functions(model, roots):
    out = []
    for spec in roots:
        path, _, name = spec.rpartition(":")
        for fn in model.functions:
            if fn.body is None:
                continue
            if not fnmatch.fnmatch(fn.file.rel, path) and \
                    fn.file.rel != path:
                continue
            if name == "*" or fn.name == name:
                out.append(fn)
    return out


def _seed_bindings(fn, graph_params, backends, inst_bindings):
    """Bindings to walk a root under: one per backend for each graph-ish
    template parameter (of the function or its class), else just {}."""
    tparams = set(fn.template_params)
    if fn.cls is not None:
        tparams |= set(fn.cls.template_params)
    gparams = tparams & graph_params
    if not gparams:
        return [{}]
    # Prefer the explicit instantiations of the enclosing class; fall
    # back to every configured backend for free-standing kernels.
    names = None
    if fn.cls is not None:
        names = inst_bindings.get(fn.cls.name)
    if not names:
        names = set(backends)
    out = []
    for b in sorted(names):
        out.append({p: b for p in gparams})
    return out


def _label(binding):
    names = sorted(set(binding.values()))
    return names[0] if len(names) == 1 else ",".join(names) if names else ""


def _receiver_class_name(model, fn, binding, receiver):
    """Best-effort type (class simple name) of a call receiver."""
    if receiver is None or receiver == "<expr>":
        return None
    if receiver in binding:
        return binding[receiver]
    if fn.cls is not None and receiver in fn.cls.fields:
        base = fn.cls.fields[receiver]
        return binding.get(base, base)
    for tb, name, _full in fn.params:
        if name == receiver:
            return binding.get(tb, tb)
    if fn.body is not None:
        for v in ast_lite.iter_locals(fn.file.tokens, *fn.body):
            if v.name == receiver and v.type_base != "auto":
                return binding.get(v.type_base, v.type_base)
    return None


def _dead_ranges(fn, binding, backends):
    """Token ranges pruned by `if constexpr (requires ...)` under this
    binding: the branch whose probe outcome contradicts the bound
    backend's member surface is not instantiated."""
    dead = []
    if fn.body is None:
        return dead
    toks = fn.file.tokens
    for br in ast_lite.iter_requires_branches(toks, *fn.body):
        cname = _receiver_class_name(None, fn, binding, br.receiver) \
            if br.receiver is not None else None
        if cname is None or cname not in backends:
            continue
        has = all(p in backends[cname].members or
                  p in backends[cname].fields
                  for p in br.probes)
        taken_then = has != br.negated
        if taken_then:
            if br.else_lo >= 0:
                dead.append((br.else_lo, br.else_hi))
        else:
            dead.append((br.then_lo, br.then_hi))
    return dead


def _alive(idx, dead):
    return not any(lo <= idx < hi for lo, hi in dead)


def _scan_body(model, fn, binding, backend, dead, findings):
    toks = fn.file.tokens
    lo, hi = fn.body
    suffix = f" [backend: {backend}]" if backend else ""
    ctx = f"hot-path function '{fn.qual_name}'"
    emitted = set()

    def emit(line, rule, what):
        key = (line, rule, backend)
        if key in emitted:
            return
        emitted.add(key)
        add(findings, fn.file, line, rule,
            f"{what} in {ctx}{suffix}")

    for k in range(lo, hi):
        t = toks[k]
        if not _alive(k, dead):
            continue
        if t.kind != "id":
            continue
        if t.text == "throw":
            emit(t.line, "hot-path-throw", "throw expression")
        elif t.text == "new" and not (k + 1 < hi and
                                      toks[k + 1].text == "("):
            emit(t.line, "hot-path-alloc", "new expression")
        elif t.text in ALLOC_TYPES:
            emit(t.line, "hot-path-alloc", f"std::{t.text} use")
        elif t.text in BLOCK_IDS:
            emit(t.line, "hot-path-block",
                 f"blocking primitive '{t.text}'")
    for c in ast_lite.iter_calls(toks, lo, hi):
        if not _alive(c.idx, dead):
            continue
        if c.name in ALLOC_CALLS and (c.receiver is not None or
                                      c.name.startswith("make_") or
                                      c.name in ("malloc", "calloc",
                                                 "realloc", "strdup")):
            emit(c.line, "hot-path-alloc", f"container growth '{c.name}()'")
        elif c.name in BLOCK_CALLS and c.receiver is not None:
            emit(c.line, "hot-path-block", f"blocking '{c.name}()'")
        else:
            target = _resolve(model, fn, binding, c)
            for tf, _tb in target:
                if tf.virtual:
                    emit(c.line, "hot-path-virtual",
                         f"virtual dispatch to '{tf.qual_name}()'")
                    break


def _resolve(model, fn, binding, call):
    """[(FunctionInfo, new_binding)] candidate targets of a call."""
    out = []
    cname = _receiver_class_name(model, fn, binding, call.receiver)
    if cname is not None:
        ci = model.find_class(cname)
        if ci is not None:
            for tf in ci.members.get(call.name, ()):
                out.append((tf, {}))
        return out
    if call.receiver is None and call.qualifier is None:
        if fn.cls is not None and call.name in fn.cls.members:
            for tf in fn.cls.members[call.name]:
                out.append((tf, dict(binding)))
            return out
        for tf in model.by_name.get(call.name, ()):
            if tf.file.rel.startswith("src/") and tf.body is not None:
                new_binding = {}
                # bind graph-ish params of the callee positionally when an
                # argument is a bound receiver (g -> backend)
                out.append((tf, new_binding))
    return out


def _callees(model, fn, binding, backends, dead, graph_params):
    toks = fn.file.tokens
    out = []
    for c in ast_lite.iter_calls(toks, *fn.body):
        if not _alive(c.idx, dead):
            continue
        for tf, tb in _resolve(model, fn, binding, c):
            if tf.body is None:
                continue
            # Crossing into a graph-templated callee: carry the backend
            # binding when an argument is a bound object of this scope.
            tparams = set(tf.template_params)
            if tf.cls is not None:
                tparams |= set(tf.cls.template_params)
            gp = tparams & graph_params
            if gp and not tb:
                bound = _arg_backend(model, fn, binding, c)
                if bound:
                    tb = {p: bound for p in gp}
            out.append((tf, tb))
    return out


def _arg_backend(model, fn, binding, call):
    """Backend name flowing into a call's arguments, if any: the first
    argument identifier whose resolved type is a configured backend."""
    toks = fn.file.tokens
    backend_names = getattr(model, "backend_names", set())
    for k in range(call.arg_lo, call.arg_hi):
        t = toks[k]
        if t.kind == "id":
            cn = _receiver_class_name(model, fn, binding, t.text)
            if cn in backend_names:
                return cn
    return None
