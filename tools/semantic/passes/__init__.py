"""Analysis passes of the semantic analyzer.

Each pass module exposes `run(model, config, findings)` where `config`
is the parsed tools/layers.toml document and `findings` the shared list
of model.Finding.  Passes mark pragma-suppressed findings themselves
(shared allow() mechanism below) so the driver only applies the audited
baseline and serializes.
"""

import re

ALLOW_PRAGMA = re.compile(r"igs-lint:\s*allow\(([a-z-]+)")


def allowed(fm, rule, lineno):
    """True when the finding's line (or the line above) carries an
    `igs-lint: allow(<rule>)` pragma — the same mechanism igs_lint and
    igs_analyzer honour, so one audited pragma silences every tool."""
    for ln in (lineno, lineno - 1):
        m = ALLOW_PRAGMA.search(fm.comments.get(ln, ""))
        if m and m.group(1) == rule:
            return True
    return False


def add(findings, fm, line, rule, message):
    from ..model import Finding
    f = Finding(fm.rel, line, rule, message)
    f.suppressed = allowed(fm, rule, line)
    findings.append(f)
    return f
