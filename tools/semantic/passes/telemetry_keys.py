"""Telemetry key registry: uniqueness, naming scheme, golden cross-check.

Every counter/gauge/histogram/phase registration whose first argument is
a string literal enters the registry.  Three rules:

  telemetry-key-naming       keys follow `area.subsystem.name` — lowercase
                             segments of [a-z0-9_], at least three, with
                             the area drawn from layers.toml
                             [semantic] telemetry_areas.
  telemetry-key-collision    the same key registered at two different
                             sites (two subsystems fighting over one
                             name: the registry would silently merge
                             their counts).
  telemetry-key-stale-golden a golden JSON under tests/golden/ references
                             a telemetry key no source file registers —
                             the golden would never fail again for that
                             counter (typically the aftermath of a key
                             rename).
"""

import json
import os
import re

from . import add
from .. import ast_lite
from ..model import Finding

KINDS = ("counter", "gauge", "histogram", "phase")
SEGMENT = re.compile(r"^[a-z0-9_]+$")
GOLDEN_SECTIONS = {"counters": "counter", "gauges": "gauge",
                   "histograms": "histogram"}


def run(model, config, findings):
    sem = config.get("semantic", {})
    areas = set(sem.get("telemetry_areas", ()))

    registry = {}     # key -> [(kind, FileModel, line)]
    for fm in model.files.values():
        if not fm.rel.startswith("src/"):
            continue
        toks = fm.tokens
        for c in ast_lite.iter_calls(toks, 0, len(toks)):
            if c.name not in KINDS or c.arg_lo >= len(toks):
                continue
            t = toks[c.arg_lo]
            if t.kind != "str":
                continue
            key = _literal_value(t.text)
            if key is None:
                continue
            registry.setdefault(key, []).append((c.name, fm, t.line))

    for key, sites in sorted(registry.items()):
        kind, fm, line = sites[0]
        segs = key.split(".")
        if len(segs) < 3 or not all(SEGMENT.match(s) for s in segs) or \
                (areas and segs[0] not in areas):
            add(findings, fm, line, "telemetry-key-naming",
                f"telemetry key '{key}' does not follow "
                f"area.subsystem.name with area in "
                f"{sorted(areas)} (lowercase [a-z0-9_] segments)")
        for other_kind, ofm, oline in sites[1:]:
            add(findings, ofm, oline, "telemetry-key-collision",
                f"telemetry key '{key}' already registered as a {kind} "
                f"at {fm.rel}:{line}; the registry would merge both "
                f"streams under one name")

    _check_goldens(model, registry, findings)
    model.telemetry_registry = {k: [(kind, fm.rel, line)
                                    for kind, fm, line in v]
                                for k, v in registry.items()}
    return registry


def _literal_value(text):
    q = text.find('"')
    if q < 0 or not text.endswith('"') or len(text) < q + 2:
        return None
    return text[q + 1:-1]


def _check_goldens(model, registry, findings):
    golden_dir = os.path.join(model.root, "tests", "golden")
    if not os.path.isdir(golden_dir):
        return
    kinds_by_key = {}
    for key, sites in registry.items():
        kinds_by_key[key] = {kind for kind, _fm, _line in sites}
    for name in sorted(os.listdir(golden_dir)):
        if not name.endswith(".json"):
            continue
        rel = f"tests/golden/{name}"
        try:
            with open(os.path.join(golden_dir, name),
                      encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError):
            continue
        tel = doc.get("telemetry", {})
        for section, kind in GOLDEN_SECTIONS.items():
            for key in sorted(tel.get(section, {})):
                kinds = kinds_by_key.get(key)
                if kinds is None:
                    f = Finding(rel, 1, "telemetry-key-stale-golden",
                                f"golden references telemetry key '{key}' "
                                f"(under telemetry.{section}) that no "
                                f"source file registers — renamed key?")
                    findings.append(f)
                elif kind not in kinds:
                    f = Finding(rel, 1, "telemetry-key-stale-golden",
                                f"golden lists telemetry key '{key}' "
                                f"under telemetry.{section} but the "
                                f"source registers it as a "
                                f"{'/'.join(sorted(kinds))}")
                    findings.append(f)
