"""SARIF 2.1.0 emitter shared by igs_analyzer.py and igs_semantic.py.

Both tools produce Finding-shaped objects (path, line, rule, message,
suppressed, baselined, level); this module owns the serialization so the
two SARIF artifacts stay structurally identical for CI upload.
"""

import json

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def sarif_document(tool_name, findings, root, rule_descriptions,
                   rule_order=None):
    """Build the SARIF document dict.  Suppressed findings are omitted;
    baselined ones are emitted with suppression metadata so viewers show
    them greyed out rather than hiding the audit trail."""
    order = list(rule_order) if rule_order else sorted(rule_descriptions)
    rules = [{"id": rule,
              "shortDescription": {"text": rule_descriptions[rule]}}
             for rule in order]
    results = []
    for f in findings:
        if f.suppressed:
            continue
        res = {
            "ruleId": f.rule,
            "level": getattr(f, "level", "error"),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
        }
        if getattr(f, "baselined", False):
            res["suppressions"] = [{"kind": "external",
                                    "justification": "audited baseline"}]
        results.append(res)
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    f"https://example.invalid/igstream/tools/{tool_name}",
                "rules": rules,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file://" + root}},
            "results": results,
        }],
    }


def write_sarif(path, tool_name, findings, root, rule_descriptions,
                rule_order=None):
    doc = sarif_document(tool_name, findings, root, rule_descriptions,
                         rule_order)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    return doc
