"""igs semantic analyzer package (tools/igs_semantic.py driver).

AST-grade whole-program analysis for the igstream repository, driven by
compile_commands.json.  Two frontends produce one intermediate model
(tools/semantic/model.py):

  - frontend_clang  libclang (clang.cindex) when importable — parses the
                    real translation units and cross-validates the model;
  - ast_lite        always available — a C++ tokenizer plus a lightweight
                    parser tuned to this repository's idiom (namespaces,
                    template classes, member/param/local types, constexpr
                    requires-probes, explicit instantiations).

Four passes run over the model (tools/semantic/passes/):

  hot_path        template-aware hot-path escape analysis with per-backend
                  attribution through instantiated specializations;
  lifetime        SnapshotView escape / invalidation / compute-stage
                  isolation (the pipeline's one-epoch-ahead invariant);
  contracts       GraphStore backend concept-surface conformance and the
                  backend-capability matrix;
  telemetry_keys  telemetry counter-name registry, naming-scheme
                  conformance, and golden-JSON key cross-check.

Findings share igs_lint's allow() pragma mechanism, an audited baseline
file with stale-entry detection (tools/semantic/baseline.py), and the
SARIF 2.1.0 emitter shared with tools/igs_analyzer.py
(tools/semantic/sarif.py).
"""
