"""Audited baseline for the semantic analyzer.

A baseline entry records a finding that was reviewed and accepted, with a
justification — the SARIF output keeps the finding (greyed out as an
external suppression) so the audit trail is never invisible.  Entries
match on (rule, path, message): line numbers drift with edits but the
messages are built from stable entity names, so a match survives
unrelated churn while any change to the finding itself (renamed symbol,
different backend attribution) un-baselines it.

Stale entries — baselined findings the analyzer no longer produces —
become `stale-baseline` findings, mirroring igs_analyzer's
stale-suppression rule: a suppression that outlives its finding is a
latent hole in the gate.
"""

import json

from .model import Finding


def load(path):
    """[(rule, path, message, justification)] from a baseline file."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return []
    entries = []
    for e in doc.get("findings", []):
        entries.append((e["rule"], e["path"], e["message"],
                        e.get("justification", "")))
    return entries


def apply(findings, entries, baseline_rel):
    """Mark matching findings as baselined; return stale-baseline findings
    for entries that matched nothing."""
    used = [False] * len(entries)
    index = {}
    for i, (rule, path, message, _just) in enumerate(entries):
        index.setdefault((rule, path, message), []).append(i)
    for f in findings:
        hits = index.get((f.rule, f.path, f.message))
        if hits:
            f.baselined = True
            f.level = "note"
            used[hits[0]] = True
    stale = []
    for i, (rule, path, message, _just) in enumerate(entries):
        if not used[i]:
            f = Finding(baseline_rel, 1, "stale-baseline",
                        f"baseline entry for [{rule}] at {path} matches no "
                        f"current finding; remove it: {message!r}")
            stale.append(f)
    return stale


def write_template(path, findings):
    """Serialize current unbaselined findings as a baseline skeleton
    (used by --update-baseline; justifications must be filled by hand)."""
    doc = {
        "_comment": "Audited findings accepted by review. Every entry "
                    "needs a justification; stale entries fail CI.",
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message,
             "justification": "TODO: justify or fix"}
            for f in findings
            if not f.suppressed and not f.baselined
            and f.rule != "stale-baseline"
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
