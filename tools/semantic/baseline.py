"""Shared audited baseline for the analysis tiers.

A baseline entry records a finding that was reviewed and accepted, with a
justification — the SARIF output keeps the finding (greyed out as an
external suppression) so the audit trail is never invisible.  Entries
match on (rule, path, message): line numbers drift with edits but the
messages are built from stable entity names, so a match survives
unrelated churn while any change to the finding itself (renamed symbol,
different backend attribution) un-baselines it.

All three tools that support baselining (igs_analyzer, igs_semantic,
igs_dataflow) share one file, tools/analysis_baseline.json:

    {
      "tools": {
        "igs_semantic": {"findings": [{"rule": ..., "path": ...,
                                       "message": ..., "justification":
                                       ...}, ...]},
        ...
      }
    }

`load(path, tool=...)` reads one tool's section; the legacy single-tool
layout (top-level "findings") is still accepted so older baseline files
keep working.  `write_template(path, findings, tool=...)` rewrites only
that tool's section and preserves the others byte-for-byte.

Stale entries — baselined findings the owning tool no longer produces —
become `stale-baseline` findings, mirroring the stale-suppression rule:
a suppression that outlives its finding is a latent hole in the gate.
"""

import json

from .model import Finding

_COMMENT = ("Audited findings accepted by review, one section per "
            "analysis tool. Every entry needs a justification; stale "
            "entries fail CI.")


def _read_doc(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def load(path, tool=None):
    """[(rule, path, message, justification)] from a baseline file.
    With `tool`, reads that tool's section of the shared layout; falls
    back to the legacy top-level "findings" list either way."""
    doc = _read_doc(path)
    if doc is None:
        return []
    raw = None
    if tool is not None and isinstance(doc.get("tools"), dict):
        raw = doc["tools"].get(tool, {}).get("findings")
    if raw is None:
        raw = doc.get("findings", [])
    entries = []
    for e in raw:
        entries.append((e["rule"], e["path"], e["message"],
                        e.get("justification", "")))
    return entries


def apply(findings, entries, baseline_rel):
    """Mark matching findings as baselined; return stale-baseline findings
    for entries that matched nothing."""
    used = [False] * len(entries)
    index = {}
    for i, (rule, path, message, _just) in enumerate(entries):
        index.setdefault((rule, path, message), []).append(i)
    for f in findings:
        hits = index.get((f.rule, f.path, f.message))
        if hits:
            f.baselined = True
            f.level = "note"
            used[hits[0]] = True
    stale = []
    for i, (rule, path, message, _just) in enumerate(entries):
        if not used[i]:
            f = Finding(baseline_rel, 1, "stale-baseline",
                        f"baseline entry for [{rule}] at {path} matches no "
                        f"current finding; remove it: {message!r}")
            stale.append(f)
    return stale


def write_template(path, findings, tool=None):
    """Serialize current unbaselined findings as a baseline skeleton
    (used by --update-baseline; justifications must be filled by hand).
    With `tool`, rewrites only that tool's section of the shared file."""
    entries = [
        {"rule": f.rule, "path": f.path, "message": f.message,
         "justification": "TODO: justify or fix"}
        for f in findings
        if not f.suppressed and not f.baselined
        and f.rule != "stale-baseline"
    ]
    if tool is None:
        doc = {"_comment": _COMMENT, "findings": entries}
    else:
        doc = _read_doc(path) or {}
        doc.setdefault("_comment", _COMMENT)
        doc.pop("findings", None)
        doc.setdefault("tools", {})
        doc["tools"][tool] = {"findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
