// Development calibration harness (not part of the shipped library):
// prints per dataset x batch size the batch degree character, CAD, the
// modeled speedups of each update path, and OCA overlap, so the dataset
// registry and cost constants can be tuned to the paper's shapes.
#include <cstdio>
#include <string>
#include <vector>

#include "core/cad.h"
#include "gen/datasets.h"
#include "graph/indexed_adjacency.h"
#include "sim/update_runner.h"
#include "stream/reorder.h"
#include "stream/update_context.h"
#include "common/thread_pool.h"

using namespace igs;

int
main(int argc, char** argv)
{
    const std::vector<std::size_t> batch_sizes =
        argc > 1 ? std::vector<std::size_t>{static_cast<std::size_t>(
                       std::stoul(argv[1]))}
                 : std::vector<std::size_t>{1000, 10000, 100000, 500000};

    std::printf("%-11s %-8s %6s %8s %8s %9s | %9s %9s %9s %9s | %6s %6s %6s | %7s\n",
                "dataset", "batch", "nb", "maxOutD", "maxInD", "CAD256",
                "base", "RO", "RO+USC", "HAU", "spRO", "spUSC", "spHAU",
                "overlap");

    for (const auto& ds : gen::registry()) {
        for (std::size_t b : batch_sizes) {
            const std::size_t nb = std::min<std::size_t>(
                gen::default_batch_count(ds, b), 4);
            // Four arms, fresh graph each.
            sim::MachineParams machine;
            sim::SwCostParams sw;
            sim::HauCostParams hw;
            const std::vector<sim::UpdateMode> modes = {
                sim::UpdateMode::kBaseline, sim::UpdateMode::kReordered,
                sim::UpdateMode::kReorderedUsc, sim::UpdateMode::kHau};
            double cycles[4] = {0, 0, 0, 0};
            double cad_sum = 0;
            double max_out = 0, max_in = 0, overlap = 0;
            int overlap_n = 0;
            for (int m = 0; m < 4; ++m) {
                auto g = graph::IndexedAdjacency(ds.model.num_vertices);
                sim::UpdateRunner runner(machine, sw, hw,
                                         ds.model.num_vertices);
                auto genr = ds.make_generator();
                for (std::size_t k = 0; k < nb; ++k) {
                    stream::EdgeBatch batch;
                    batch.id = k + 1;
                    batch.set_edges(genr.take(b));
                    stream::OcaProbe probe;
                    const auto stats =
                        runner.run(g, batch, modes[m], m == 0 ? &probe : nullptr);
                    cycles[m] += static_cast<double>(stats.cycles);
                    if (m == 0) {
                        if (k > 0) {
                            overlap += probe.ratio();
                            ++overlap_n;
                        }
                        const auto rb =
                            stream::reorder_batch(batch.edges(), default_pool());
                        const auto cad = core::cad_from_reordered(rb, 256);
                        cad_sum += cad.cad();
                        max_out = std::max(
                            max_out, static_cast<double>(cad.max_out_degree));
                        max_in = std::max(
                            max_in, static_cast<double>(cad.max_in_degree));
                    }
                }
            }
            std::printf(
                "%-11s %-8zu %6zu %8.0f %8.0f %9.0f | %9.3g %9.3g %9.3g %9.3g "
                "| %6.2f %6.2f %6.2f | %7.2f\n",
                ds.name.c_str(), b, nb, max_out, max_in,
                cad_sum / static_cast<double>(nb), cycles[0], cycles[1],
                cycles[2], cycles[3], cycles[0] / cycles[1],
                cycles[0] / cycles[2], cycles[0] / cycles[3],
                overlap_n ? overlap / overlap_n : 0.0);
            std::fflush(stdout);
        }
    }
    return 0;
}
