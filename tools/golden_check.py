#!/usr/bin/env python3
"""Golden-run regression checker for the bench `--json` exports.

Compares a candidate metrics document (produced by
`bench_golden_replay --set=<name> --json=<path>`, or any bench binary)
against a blessed snapshot in tests/golden/.  The comparison walks both
documents and applies the first matching rule per dotted path:

  ignore   — field may differ (wall-clock, scratch capacities, phases)
  exact    — values must be equal after JSON parsing (the default; covers
             modeled cycles, decision booleans, CAD values, counters)
  rel:<t>  — doubles must agree within relative tolerance t

Everything the Table-1 timing model produces is deterministic, so the
default is exact; only host-time-dependent fields are ignored.

Usage:
  golden_check.py --golden G.json --candidate C.json
  golden_check.py --golden G.json --binary <bench_golden_replay> --set <s>
  ... --bless           # overwrite the golden with the candidate
  golden_check.py --self-test
"""

import argparse
import fnmatch
import json
import os
import subprocess
import sys
import tempfile

SCHEMA_VERSION = 1

# First match wins; paths are dotted (arrays as [i]).  Metric names keep
# their internal dots, so prefix globs match them naturally.
RULES = [
    ("host.wall_seconds", "ignore"),
    # Scale metadata is excluded from the field diff but checked up front:
    # scale_mismatch() refuses to compare documents whose effective
    # IGS_BENCH_SCALE differs (a scaled run pins different batch counts,
    # so every cycle count would "mismatch" for the wrong reason).
    ("host.bench_scale", "ignore"),
    ("host.bench_scale_env", "ignore"),
    ("telemetry.phases*", "ignore"),  # wall-clock accumulators
    ("*wall*", "ignore"),
    ("*seconds*", "ignore"),
    ("*watermark*", "ignore"),  # scratch capacities: allocator-dependent
    ("*", "exact"),
]


def rule_for(path):
    for pattern, action in RULES:
        if fnmatch.fnmatch(path, pattern):
            return action
    return "exact"


def _values_match(action, golden, candidate):
    if action.startswith("rel:"):
        tol = float(action[4:])
        if isinstance(golden, (int, float)) and isinstance(
            candidate, (int, float)
        ):
            scale = max(abs(golden), abs(candidate), 1e-12)
            return abs(golden - candidate) <= tol * scale
    return golden == candidate


def diff(golden, candidate, path="", out=None):
    """Collect mismatch descriptions between two parsed JSON values."""
    if out is None:
        out = []
    action = rule_for(path) if path else "exact"
    if action == "ignore":
        return out
    if type(golden) is not type(candidate) and not (
        isinstance(golden, (int, float))
        and isinstance(candidate, (int, float))
        and not isinstance(golden, bool)
        and not isinstance(candidate, bool)
    ):
        out.append(f"{path or '<root>'}: type {type(golden).__name__} vs "
                   f"{type(candidate).__name__}")
        return out
    if isinstance(golden, dict):
        for k in sorted(set(golden) | set(candidate)):
            sub = f"{path}.{k}" if path else k
            if k not in golden:
                if rule_for(sub) != "ignore":
                    out.append(f"{sub}: only in candidate")
            elif k not in candidate:
                if rule_for(sub) != "ignore":
                    out.append(f"{sub}: missing from candidate")
            else:
                diff(golden[k], candidate[k], sub, out)
    elif isinstance(golden, list):
        # Diff the common prefix before reporting a length mismatch, so one
        # dropped/added element doesn't mask every other defect: the caller
        # gets all mismatched keys in a single run.
        for i, (g, c) in enumerate(zip(golden, candidate)):
            diff(g, c, f"{path}[{i}]", out)
        if len(golden) != len(candidate):
            out.append(f"{path}: length {len(golden)} vs {len(candidate)}")
    else:
        if not _values_match(action, golden, candidate):
            out.append(f"{path}: {golden!r} vs {candidate!r}")
    return out


def scale_mismatch(golden, candidate):
    """Return an error string when the two documents were produced at
    different effective bench scales, else None.

    bench_scale is otherwise ignored by the field diff (it never affects
    a golden produced at scale 1), but silently diffing a scaled candidate
    against an unscaled golden would flood the report with cycle-count
    mismatches whose real cause is the batch-count difference.  Refuse
    up front with an actionable message instead.
    """
    g = golden.get("host", {}).get("bench_scale")
    c = candidate.get("host", {}).get("bench_scale")
    if g is None or c is None or g == c:
        return None
    return (f"bench scale mismatch: golden was produced at "
            f"bench_scale={g!r}, candidate at bench_scale={c!r}; "
            "unset IGS_BENCH_SCALE (or rerun via --binary, which "
            "strips it) before comparing")


def check_schema(doc, label):
    if not isinstance(doc, dict):
        return [f"{label}: document is not an object"]
    errs = []
    if doc.get("schema_version") != SCHEMA_VERSION:
        errs.append(f"{label}: schema_version "
                    f"{doc.get('schema_version')!r} != {SCHEMA_VERSION}")
    for key, typ in (("experiment", str), ("host", dict), ("streams", list),
                     ("telemetry", dict)):
        if not isinstance(doc.get(key), typ):
            errs.append(f"{label}: missing/invalid '{key}'")
    return errs


def run_binary(binary, set_name):
    fd, path = tempfile.mkstemp(suffix=".json", prefix="golden_")
    os.close(fd)
    try:
        env = dict(os.environ)
        # Goldens pin their own batch counts; make sure a scaled CI
        # environment cannot leak into comparisons anyway.
        env.pop("IGS_BENCH_SCALE", None)
        subprocess.run(
            [binary, f"--set={set_name}", f"--json={path}"],
            check=True,
            stdout=subprocess.DEVNULL,
            env=env,
        )
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def self_test():
    golden = {
        "schema_version": 1,
        "experiment": "x",
        "host": {"bench_scale": 1.0, "wall_seconds": 1.5},
        "streams": [{"batches": [{"id": 1, "update_cycles": 100,
                                  "cad": None}]}],
        "telemetry": {
            "counters": {"core.engine.batches": 6},
            "gauges": {"stream.reorder.scratch_edges_watermark": 4096.0},
            "phases": {"core.engine.ingest_wall": {"seconds": 0.1}},
        },
    }
    ok = json.loads(json.dumps(golden))
    ok["host"]["wall_seconds"] = 99.0  # ignored
    ok["telemetry"]["phases"]["core.engine.ingest_wall"]["seconds"] = 7.0
    ok["telemetry"]["gauges"]["stream.reorder.scratch_edges_watermark"] = 1.0
    assert diff(golden, ok) == [], diff(golden, ok)

    bad = json.loads(json.dumps(golden))
    bad["streams"][0]["batches"][0]["update_cycles"] = 101
    d = diff(golden, bad)
    assert d == ["streams[0].batches[0].update_cycles: 100 vs 101"], d

    bad = json.loads(json.dumps(golden))
    bad["telemetry"]["counters"]["core.engine.batches"] = 7
    assert len(diff(golden, bad)) == 1

    bad = json.loads(json.dumps(golden))
    bad["streams"][0]["batches"][0]["cad"] = 465.0  # None -> value flips
    assert len(diff(golden, bad)) == 1

    bad = json.loads(json.dumps(golden))
    del bad["streams"][0]["batches"][0]
    assert diff(golden, bad) == ["streams[0].batches: length 1 vs 0"]

    # A length mismatch no longer masks element mismatches: the common
    # prefix is still diffed, so every defect surfaces in one run.
    bad = json.loads(json.dumps(golden))
    bad["streams"][0]["batches"][0]["update_cycles"] = 7
    bad["streams"][0]["batches"].append({"id": 2})
    d = diff(golden, bad)
    assert "streams[0].batches[0].update_cycles: 100 vs 7" in d, d
    assert "streams[0].batches: length 1 vs 2" in d, d
    assert len(d) == 2, d

    # A candidate carrying the newer bench_scale_env metadata key diffs
    # clean against an older golden that predates it.
    ok = json.loads(json.dumps(golden))
    ok["host"]["bench_scale_env"] = None
    assert diff(golden, ok) == [], diff(golden, ok)

    # Same scale (or absent scale) never trips the refusal ...
    assert scale_mismatch(golden, ok) is None
    assert scale_mismatch({}, golden) is None
    # ... but comparing documents from different effective scales does.
    scaled = json.loads(json.dumps(golden))
    scaled["host"]["bench_scale"] = 0.25
    assert scale_mismatch(golden, scaled) is not None

    assert check_schema(golden, "g") == []
    assert check_schema({"schema_version": 2}, "g") != []
    print("golden_check self-test: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--golden", help="blessed snapshot path")
    ap.add_argument("--candidate", help="candidate JSON to compare")
    ap.add_argument("--binary", help="bench_golden_replay binary to run")
    ap.add_argument("--set", dest="set_name", help="golden set name")
    ap.add_argument("--bless", action="store_true",
                    help="write the candidate over the golden")
    ap.add_argument("--max-mismatches", type=int, default=20)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.golden:
        ap.error("--golden is required (or --self-test)")

    if args.binary:
        if not args.set_name:
            ap.error("--binary requires --set")
        candidate = run_binary(args.binary, args.set_name)
    elif args.candidate:
        with open(args.candidate) as f:
            candidate = json.load(f)
    else:
        ap.error("need --candidate or --binary")

    errs = check_schema(candidate, "candidate")
    if errs:
        print("\n".join(errs))
        return 1

    if args.bless:
        with open(args.golden, "w") as f:
            json.dump(candidate, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"blessed {args.golden}")
        return 0

    with open(args.golden) as f:
        golden = json.load(f)
    errs = check_schema(golden, "golden")
    if errs:
        print("\n".join(errs))
        return 1

    err = scale_mismatch(golden, candidate)
    if err:
        print(err)
        return 1

    mismatches = diff(golden, candidate)
    if mismatches:
        shown = mismatches[: args.max_mismatches]
        print(f"golden mismatch vs {args.golden} "
              f"({len(mismatches)} fields):")
        for m in shown:
            print(f"  {m}")
        if len(mismatches) > len(shown):
            print(f"  ... and {len(mismatches) - len(shown)} more")
        print("If the change is intentional, re-bless with:\n"
              f"  tools/golden_check.py --golden {args.golden} "
              "--binary <bench_golden_replay> --set <set> --bless")
        return 1
    print(f"golden OK: {args.golden}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
