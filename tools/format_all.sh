#!/usr/bin/env sh
# One-time blessed clang-format pass (and later touch-ups).
#
#   tools/format_all.sh          reformat the tree in place
#   tools/format_all.sh --bless  reformat AND drop tools/.format_blessed,
#                                the marker that flips the format_check
#                                ctest from informational to fatal (see
#                                tools/format_check.cmake)
#
# Requires a clang-format whose MAJOR version matches tools/format_version
# — cross-major clang-format output differs spuriously, which is exactly
# the churn the pin exists to prevent.  Commit the result of --bless in
# its own commit so the reformat diff stays separate from real changes.
set -eu

here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
root=$(dirname -- "$here")
pin=$(cat "$here/format_version")

cf=""
for cand in "clang-format-$pin" clang-format; do
    if command -v "$cand" >/dev/null 2>&1; then
        cf=$cand
        break
    fi
done
if [ -z "$cf" ]; then
    echo "format_all: no clang-format found (need major $pin)" >&2
    exit 2
fi
major=$("$cf" --version | sed -n 's/.*clang-format version \([0-9]*\).*/\1/p')
if [ "$major" != "$pin" ]; then
    echo "format_all: $cf is major $major, pin is $pin" \
         "(tools/format_version); refusing the cross-major churn" >&2
    exit 2
fi

cd "$root"
files=$(find src bench tests examples \
            \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) \
            -not -path '*lint_fixtures*' \
            -not -path '*analyzer_fixtures*' \
            -not -path '*semantic_fixtures*' 2>/dev/null)
n=0
for f in $files; do
    "$cf" -i "$f"
    n=$((n + 1))
done
echo "format_all: reformatted $n file(s) with $cf (major $major)"

if [ "${1:-}" = "--bless" ]; then
    {
        echo "# Blessed clang-format pass marker."
        echo "# Created by tools/format_all.sh --bless with $cf"
        echo "# (major $major, pin $pin).  While this file exists and the"
        echo "# detected clang-format matches the pin, the format_check"
        echo "# ctest fails on any drift."
    } > "$here/.format_blessed"
    echo "format_all: wrote $here/.format_blessed -- format_check is now" \
         "fatal under clang-format major $pin"
fi
