#!/usr/bin/env python3
"""igs_semantic — declaration-level semantic analyzer for igstream.

Where igs_lint polices single lines and igs_analyzer walks the
quoted-include/call-graph structure, this tool parses real declarations
(two frontends: libclang via compile_commands.json when importable,
the ast_lite tokenizer/parser otherwise — see tools/semantic/) and runs
four passes:

  hot_path        template-aware hot-path escape analysis: the walk forks
                  per instantiated graph-store backend, prunes
                  `if constexpr (requires ...)` branches against each
                  backend's real member surface, and attributes findings
                  to the backend whose specialization reaches them.
  lifetime        SnapshotView escape / invalidation / compute-stage
                  isolation (the pipeline's one-epoch-ahead invariant,
                  DESIGN.md §11).
  contracts       backend concept-surface conformance plus the
                  backend-capability matrix (--matrix): renaming
                  apply_coalesced away from a probed hook becomes a CI
                  failure instead of a silent slow-path fallback.
  telemetry_keys  telemetry key registry: uniqueness, naming scheme,
                  golden-JSON cross-check.

Findings honour igs_lint's `igs-lint: allow(<rule>)` pragmas, the shared
audited baseline (tools/analysis_baseline.json, section igs_semantic)
with stale-entry detection, and are emitted as SARIF 2.1.0 through the
emitter shared with igs_analyzer.py.  `--diff-base <ref>` keeps the exit
code scoped to files changed since the merge base (CI) while still
printing everything.  Parsing runs through the shared parallel/cached
front end (tools/semantic/parse_cache.py) also used by igs_dataflow.

Exit codes: 0 clean / only baselined, 1 findings, 2 usage error.
"""

import argparse
import json
import os
import subprocess
import sys
import time
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from semantic import baseline, parse_cache, sarif  # noqa: E402
from semantic.parse_cache import discover_sources  # noqa: E402,F401
from semantic.passes import ALLOW_PRAGMA, contracts, hot_path, lifetime, \
    telemetry_keys  # noqa: E402

TOOL_NAME = "igs_semantic"

SEMANTIC_RULES = (
    "hot-path-alloc", "hot-path-block", "hot-path-throw",
    "hot-path-virtual",
    "snapshot-view-escape", "view-invalidated-use", "compute-reads-live",
    "backend-contract", "backend-capability", "contract-probe-dangling",
    "telemetry-key-naming", "telemetry-key-collision",
    "telemetry-key-stale-golden",
    "stale-baseline", "stale-suppression",
)

# Rules owned exclusively by this tool: an allow() pragma for one of
# these that suppresses nothing here is stale.  The hot-path-* IDs are
# shared with igs_lint/igs_analyzer, so their pragmas are audited there.
EXCLUSIVE_RULES = frozenset(r for r in SEMANTIC_RULES
                            if not r.startswith("hot-path-")
                            and not r.startswith("stale-"))

RULE_DESCRIPTIONS = {
    "hot-path-alloc":
        "Allocation reachable from a [hot_paths] root for the "
        "attributed backend instantiation.",
    "hot-path-block":
        "Blocking primitive reachable from a [hot_paths] root.",
    "hot-path-throw":
        "Throw expression reachable from a [hot_paths] root.",
    "hot-path-virtual":
        "Virtual dispatch on the hot path; kernels are devirtualized "
        "by construction.",
    "snapshot-view-escape":
        "SnapshotView leaves its producing scope (member store, lambda "
        "capture, or return); views are only valid until the next "
        "publish().",
    "view-invalidated-use":
        "publish()/live-store mutation between a SnapshotView's "
        "creation and its last use.",
    "compute-reads-live":
        "Compute callable registered via set_compute touches mutable "
        "adjacency state instead of its SnapshotView argument.",
    "backend-contract":
        "GraphStore backend is missing a member of the engine's "
        "required or declared concept surface.",
    "backend-capability":
        "Backend defines a probed hook it does not declare in "
        "layers.toml (undeclared capability).",
    "contract-probe-dangling":
        "`requires`-probe probes a member name outside the declared "
        "probe list (renamed hook?).",
    "telemetry-key-naming":
        "Telemetry key violates the area.subsystem.name scheme.",
    "telemetry-key-collision":
        "Telemetry key registered at two different sites.",
    "telemetry-key-stale-golden":
        "Golden JSON references a telemetry key no source registers.",
    "stale-baseline":
        "Audited baseline entry matches no current finding.",
    "stale-suppression":
        "allow() pragma for a semantic-only rule suppresses nothing.",
}


def build_model(root, config, frontend="auto", compile_commands=None):
    """Delegates to the shared parallel/cached parsing front end."""
    return parse_cache.build_model(root, config, frontend,
                                   compile_commands)


def check_stale_pragmas(model, findings):
    """allow() pragmas for semantic-exclusive rules must suppress a
    finding; a pragma that outlives its finding is a hole in the gate."""
    suppressed = {(f.path, ln, f.rule)
                  for f in findings if f.suppressed
                  for ln in (f.line, f.line - 1)}
    for rel, fm in sorted(model.files.items()):
        for lineno, text in sorted(fm.comments.items()):
            m = ALLOW_PRAGMA.search(text)
            if not m or m.group(1) not in EXCLUSIVE_RULES:
                continue
            if (rel, lineno, m.group(1)) not in suppressed:
                from semantic.model import Finding
                findings.append(Finding(
                    rel, lineno, "stale-suppression",
                    f"allow({m.group(1)}) pragma suppresses no "
                    f"igs_semantic finding; remove it"))


def run_analysis(root, config, frontend="auto", compile_commands=None):
    model = build_model(root, config, frontend, compile_commands)
    findings = []
    timings = {}
    for name, pass_mod in (("hot_path", hot_path),
                           ("lifetime", lifetime),
                           ("contracts", contracts),
                           ("telemetry_keys", telemetry_keys)):
        t0 = time.monotonic()
        pass_mod.run(model, config, findings)
        timings[name] = round(time.monotonic() - t0, 3)
    check_stale_pragmas(model, findings)
    model.pass_timings = timings
    return model, findings


def changed_files(root, diff_base):
    try:
        base = subprocess.run(
            ["git", "merge-base", diff_base, "HEAD"], cwd=root,
            capture_output=True, text=True, check=True).stdout.strip()
        out = subprocess.run(
            ["git", "diff", "--name-only", base, "--"], cwd=root,
            capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    return {l.strip() for l in out.splitlines() if l.strip()}


def main(argv=None):
    here = os.path.dirname(os.path.abspath(__file__))
    default_root = os.path.dirname(here)
    ap = argparse.ArgumentParser(prog=TOOL_NAME,
                                 description=__doc__.splitlines()[1])
    ap.add_argument("--root", default=default_root)
    ap.add_argument("--layers",
                    default=os.path.join(here, "layers.toml"))
    ap.add_argument("--compile-commands",
                    default=os.path.join(default_root, "build",
                                         "compile_commands.json"))
    ap.add_argument("--frontend", choices=("auto", "clang", "lex"),
                    default="auto")
    ap.add_argument("--sarif", metavar="PATH")
    ap.add_argument("--matrix", metavar="PATH",
                    help="write the backend-capability matrix (JSON)")
    ap.add_argument("--baseline",
                    default=os.path.join(here, "analysis_baseline.json"))
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings "
                         "(justifications must be filled in by review)")
    ap.add_argument("--diff-base", metavar="REF",
                    help="only fail on findings in files changed since "
                         "the merge base with REF")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test(args.root)

    try:
        with open(args.layers, "rb") as f:
            config = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        print(f"igs_semantic: cannot load {args.layers}: {exc}",
              file=sys.stderr)
        return 2

    cc = args.compile_commands if args.frontend != "lex" else None
    model, findings = run_analysis(args.root, config, args.frontend, cc)

    if args.update_baseline:
        baseline.write_template(args.baseline, findings, tool=TOOL_NAME)
        print(f"igs_semantic: baseline section written to "
              f"{args.baseline}")
        return 0

    entries = baseline.load(args.baseline, tool=TOOL_NAME)
    baseline_rel = os.path.relpath(args.baseline, args.root)
    findings.extend(baseline.apply(findings, entries, baseline_rel))

    if args.matrix:
        matrix = dict(model.capability_matrix)
        matrix["backends"] = {
            k: {kk: vv for kk, vv in v.items() if kk != "found"}
            for k, v in matrix["backends"].items()}
        with open(args.matrix, "w", encoding="utf-8") as f:
            json.dump(matrix, f, indent=2)
            f.write("\n")
    if args.sarif:
        sarif.write_sarif(args.sarif, TOOL_NAME, findings, args.root,
                          RULE_DESCRIPTIONS, SEMANTIC_RULES)

    active = [f for f in findings if not f.suppressed and not f.baselined]
    gate = active
    if args.diff_base:
        changed = changed_files(args.root, args.diff_base)
        if changed is not None:
            gate = [f for f in active
                    if f.path in changed or f.rule.startswith("stale-")]
    for f in active:
        mark = "" if f in gate else " [outside diff scope]"
        print(f"{f}{mark}")
    for note in model.frontend_notes:
        print(f"igs_semantic: note: {note}", file=sys.stderr)

    n_files = len(model.files)
    ps = getattr(model, "parse_stats", {})
    pt = getattr(model, "pass_timings", {})
    timing = ", ".join([f"parse {ps.get('seconds', 0)}s "
                        f"({ps.get('jobs', 1)}j, "
                        f"{ps.get('cache_hits', 0)} cached)"] +
                       [f"{k} {v}s" for k, v in pt.items()])
    print(f"igs_semantic: {'FAIL' if gate else 'OK'} "
          f"({n_files} files, frontend={model.frontend}, "
          f"{len(active)} finding(s), {len(gate)} gating; {timing})")
    if not gate and active and args.diff_base:
        print("igs_semantic: non-gating findings above predate "
              "--diff-base; fix or baseline them in a follow-up")
    print()
    print(contracts.format_matrix(model.capability_matrix))
    return 1 if gate else 0


# --- self-test over tests/semantic_fixtures ------------------------------

# fixture name -> {rule: [expected (path, line) locations]}.  A line of 0
# matches any line (JSON goldens carry no positions).  `contains` lists
# substrings that must appear in some finding message of the fixture;
# `not_contains` substrings that must appear in none.
SELF_TEST_EXPECTATIONS = {
    "leaked_view": {
        "rules": {"snapshot-view-escape": [("src/app/leak.cc", 14),
                                           ("src/app/leak.cc", 22)]},
    },
    "publish_under_view": {
        "rules": {"view-invalidated-use": [("src/app/pub.cc", 13)]},
    },
    "compute_reads_live": {
        "rules": {"compute-reads-live": [("src/app/compute.cc", 15)]},
    },
    "missing_capability": {
        "rules": {"backend-contract": [("src/graph/mini_store.h", 6)]},
    },
    "bad_telemetry_key": {
        "rules": {"telemetry-key-naming": [("src/app/tele.cc", 8)]},
    },
    "dup_telemetry_key": {
        "rules": {"telemetry-key-collision": [("src/app/tele2.cc", 12)]},
    },
    "stale_golden_key": {
        "rules": {"telemetry-key-stale-golden":
                  [("tests/golden/mini.json", 0)]},
    },
    "backend_hot_alloc": {
        "rules": {"hot-path-alloc": [("src/app/kernel.h", 12)]},
        "contains": ["[backend: FancyStore]"],
        "not_contains": ["[backend: PlainStore]"],
    },
    "clean_ok": {"rules": {}},
}


def run_self_test(root):
    fixtures = os.path.join(root, "tests", "semantic_fixtures")
    if not os.path.isdir(fixtures):
        print(f"igs_semantic: fixture dir missing: {fixtures}",
              file=sys.stderr)
        return 2
    failures = []
    for name, exp in sorted(SELF_TEST_EXPECTATIONS.items()):
        fdir = os.path.join(fixtures, name)
        layers = os.path.join(fdir, "layers.toml")
        with open(layers, "rb") as f:
            config = tomllib.load(f)
        _model, findings = run_analysis(fdir, config, frontend="lex")
        doc = sarif.sarif_document(TOOL_NAME, findings, fdir,
                                   RULE_DESCRIPTIONS, SEMANTIC_RULES)
        got = []
        messages = []
        for res in doc["runs"][0]["results"]:
            loc = res["locations"][0]["physicalLocation"]
            got.append((res["ruleId"],
                        loc["artifactLocation"]["uri"],
                        loc["region"]["startLine"]))
            messages.append(res["message"]["text"])
        want = [(rule, path, line)
                for rule, locs in exp["rules"].items()
                for path, line in locs]
        for rule, path, line in want:
            hit = any(g[0] == rule and g[1] == path and
                      (line == 0 or g[2] == line) for g in got)
            if not hit:
                failures.append(f"{name}: expected [{rule}] at "
                                f"{path}:{line}, got {sorted(got)}")
        expected_rules = set(exp["rules"])
        for g in got:
            if g[0] not in expected_rules:
                failures.append(f"{name}: unexpected finding "
                                f"[{g[0]}] at {g[1]}:{g[2]}")
        for needle in exp.get("contains", ()):
            if not any(needle in m for m in messages):
                failures.append(f"{name}: no finding message contains "
                                f"{needle!r}")
        for needle in exp.get("not_contains", ()):
            if any(needle in m for m in messages):
                failures.append(f"{name}: a finding message contains "
                                f"forbidden {needle!r}")
    if failures:
        for f in failures:
            print(f"igs_semantic self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"igs_semantic self-test: OK "
          f"({len(SELF_TEST_EXPECTATIONS)} fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
