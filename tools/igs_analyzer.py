#!/usr/bin/env python3
"""igs_analyzer -- whole-program analyzer for the igstream repository.

Where tools/igs_lint.py checks one file at a time, this tool builds
whole-program views from the translation units listed in
compile_commands.json (falling back to a directory walk) and enforces
three cross-file properties:

  layer-inversion     The quoted-include graph must respect the module
                      DAG declared in tools/layers.toml
                      (common -> {graph,gen,stream} -> {core,analytics}
                      -> sim -> {bench,tests,examples,tools}).
  include-cycle       The quoted-include graph must be acyclic.
  lock-order-cycle    The lock-order graph -- "lock B acquired while A
                      is held", stitched across files through the call
                      graph -- must be acyclic, else two threads taking
                      the locks in opposite orders can deadlock.
  hot-path-alloc      Functions reachable from the configured hot-path
  hot-path-block      roots ([hot_paths] roots in layers.toml) must not
  hot-path-throw      allocate, take a std:: blocking primitive, or
                      throw.  igs::Spinlock is deliberately NOT treated
                      as blocking: busy-wait per-vertex locking is the
                      paper's baseline update mechanism.
  stale-suppression   Every `igs-lint: allow(<analyzer rule>)` pragma
                      must still suppress something (or, for
                      hot-path-alloc in IGS_HOT_PATH files, still sit on
                      a matching allocation site, since igs_lint shares
                      that rule id).
  stale-baseline      Every igs_analyzer entry in the shared audited
                      baseline (tools/analysis_baseline.json, section
                      "igs_analyzer") must still match a finding.

Findings are suppressed by the same audited pragma mechanism as
igs_lint: `// igs-lint: allow(<rule>)` on the offending or preceding
line.  The call graph is a deliberate over-approximation (simple-name
matching against project-defined functions on comment/string-blanked
text); `[hot_paths] stop` lists setup-time-only functions the
reachability walk does not descend into.

Usage:
  tools/igs_analyzer.py [--root DIR] [--compile-commands FILE]
                        [--layers FILE] [--sarif FILE] [--baseline FILE]
                        [--update-baseline]
  tools/igs_analyzer.py --self-test       # run against analyzer_fixtures

Exit status: 0 clean, 1 unsuppressed findings, 2 setup/config error.
"""

import argparse
import json
import os
import re
import sys
import tomllib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from igs_lint import (  # noqa: E402  (single source of truth for these)
    ALLOW_PRAGMA,
    HOT_ALLOC_PATTERNS,
    HOT_PATH_TAG,
    INCLUDE_RE,
    blank_comments_and_strings,
    is_allowed,
)

TOOL_NAME = "igs_analyzer"
SOURCE_EXTS = (".h", ".cc", ".cpp")
SCAN_DIRS = ("src", "bench", "tests", "examples")
EXCLUDED_PARTS = ("lint_fixtures", "analyzer_fixtures", "build")

# --- escape-analysis patterns -------------------------------------------

BLOCK_PATTERNS = [
    (re.compile(r"\bMutexLock\b"),
     "igs::MutexLock (std::mutex) acquisition"),
    (re.compile(r"std::(recursive_|timed_|shared_)?mutex\b"),
     "std::mutex-family primitive"),
    (re.compile(r"std::(lock_guard|unique_lock|scoped_lock)\b"),
     "std:: blocking guard"),
    (re.compile(r"\bcondition_variable(_any)?\b"),
     "condition variable"),
    (re.compile(r"\.\s*wait(_for|_until)?\s*\("),
     "blocking wait()"),
    (re.compile(r"\bsleep_(for|until)\s*\("),
     "thread sleep"),
]

THROW_PATTERN = re.compile(r"\bthrow\b")

# Scoped lock guards recognised by the lock-order analysis.  SpinlockGuard
# is included here (ordering cycles deadlock spinlocks just as hard as
# mutexes) even though it is not a *blocking* primitive above.
GUARD_RE = re.compile(
    r"\b(?:igs::)?(MutexLock|SpinlockGuard|"
    r"std::lock_guard|std::unique_lock|std::scoped_lock)\b"
    r"(?:\s*<[^;>]*>)?\s+\w+\s*\(")

# Identifier (possibly ::-qualified) directly before a '('.
CALLISH_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*(?:::[A-Za-z_~][\w]*)*)\s*\(")

NOT_A_FUNCTION = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "static_assert", "constexpr",
    "consteval", "constinit", "new", "delete", "throw", "else", "do",
    "case", "default", "defined", "operator", "requires", "template",
    "using", "typedef", "goto", "and", "or", "not", "assert",
    "co_await", "co_return", "co_yield", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "explicit", "typename",
})

ANALYZER_RULES = (
    "layer-inversion", "include-cycle", "lock-order-cycle",
    "hot-path-alloc", "hot-path-block", "hot-path-throw",
    "stale-hot-path-tag", "stale-baseline", "stale-suppression",
)

RULE_DESCRIPTIONS = {
    "layer-inversion":
        "Quoted include crosses the declared module layering "
        "(tools/layers.toml) in the wrong direction.",
    "include-cycle":
        "The quoted-include graph contains a cycle.",
    "lock-order-cycle":
        "Two code paths acquire the same locks in opposite nesting "
        "orders; concurrent execution can deadlock.",
    "hot-path-alloc":
        "A function reachable from a hot-path root allocates.",
    "hot-path-block":
        "A function reachable from a hot-path root takes a std:: "
        "blocking primitive.",
    "hot-path-throw":
        "A function reachable from a hot-path root throws.",
    "stale-hot-path-tag":
        "A file carries the '// IGS_HOT_PATH' tag but none of its "
        "functions appear in the hot-path call graph.",
    "stale-baseline":
        "An audited-baseline entry (tools/analysis_baseline.json) "
        "matches no current finding.",
    "stale-suppression":
        "An 'igs-lint: allow(...)' pragma for an analyzer rule no "
        "longer suppresses anything.",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = False
        self.baselined = False
        self.level = "warning"

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- source model --------------------------------------------------------


class SourceFile:
    """One parsed file: blanked code, comments, includes, functions."""

    def __init__(self, root, rel):
        self.rel = rel.replace(os.sep, "/")
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            self.text = f.read()
        self.code, self.comments = blank_comments_and_strings(self.text)
        self.raw_lines = self.text.splitlines()
        self.is_hot_tagged = any(
            HOT_PATH_TAG.match(l) for l in self.raw_lines)
        # Cumulative offsets for char-position -> 1-based line mapping.
        self._line_starts = [0]
        for i, ch in enumerate(self.code):
            if ch == "\n":
                self._line_starts.append(i + 1)
        self.functions = extract_functions(self)

    def line_of(self, pos):
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    @property
    def module(self):
        parts = self.rel.split("/")
        if parts[0] == "src" and len(parts) > 1:
            return parts[1]
        return parts[0]


class Function:
    """A function definition: name, body extent, calls, lock events."""

    def __init__(self, source, name, def_pos, body_start, body_end):
        self.source = source
        self.name = name                       # simple (unqualified) name
        self.line = source.line_of(def_pos)
        self.body_start = body_start           # offset of '{'
        self.body_end = body_end               # offset past matching '}'
        self.calls = []                        # (simple_name, pos)
        self.acquisitions = []                 # (lock_label, pos, scope_end)

    @property
    def key(self):
        return f"{self.source.rel}:{self.name}:{self.line}"

    def __repr__(self):
        return self.key


def _match_paren(code, open_pos):
    """Index just past the ')' matching code[open_pos] == '(', or -1."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _match_brace(code, open_pos):
    """Index just past the '}' matching code[open_pos] == '{', or -1."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _body_after_signature(code, close_paren):
    """Given the position just past a parameter list's ')', return the
    offset of the body's '{' if this is a function definition, else -1.
    Skips cv/ref/noexcept qualifiers, attribute-like macros (e.g. the
    IGS_ACQUIRE(..) thread-safety annotations), trailing return types,
    and constructor initializer lists."""
    i = close_paren
    n = len(code)
    while i < n:
        while i < n and code[i].isspace():
            i += 1
        if i >= n:
            return -1
        c = code[i]
        if c == "{":
            return i
        if c in ";=,)":
            return -1                          # declaration / call / init
        if c == ":" and i + 1 < n and code[i + 1] != ":":
            # Constructor initializer list: scan to the body's '{'.
            i += 1
            depth = 0
            while i < n:
                c = code[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                elif c == ";":
                    return -1
                elif c == "{" and depth == 0:
                    # Disambiguate braced member-init `m{..}` (preceded
                    # by an identifier char) from the body brace.
                    j = i - 1
                    while j >= 0 and code[j].isspace():
                        j -= 1
                    if j >= 0 and (code[j].isalnum() or code[j] == "_"):
                        end = _match_brace(code, i)
                        if end < 0:
                            return -1
                        i = end
                        continue
                    return i
                i += 1
            return -1
        if code.startswith("->", i):
            i += 2
            continue
        if c == "&":                           # ref-qualifier
            i += 1
            continue
        m = re.match(r"[A-Za-z_][\w:<>,*&\s]*", code[i:])
        if m:
            i += m.end()
            # Attribute macro / noexcept may carry an argument list.
            while i < n and code[i].isspace():
                i += 1
            if i < n and code[i] == "(":
                end = _match_paren(code, i)
                if end < 0:
                    return -1
                i = end
            continue
        return -1
    return -1


def extract_functions(source):
    """Find function definitions in blanked code.  Heuristic but tuned to
    this repository's style; intentionally over-approximate (a spurious
    'function' only adds call-graph edges, it cannot hide real ones)."""
    code = source.code
    functions = []
    for m in CALLISH_RE.finditer(code):
        name = m.group(1).split("::")[-1].lstrip("~")
        if m.group(1).split("::")[0] in NOT_A_FUNCTION or \
                name in NOT_A_FUNCTION:
            continue
        open_paren = m.end() - 1
        close = _match_paren(code, open_paren)
        if close < 0:
            continue
        body = _body_after_signature(code, close)
        if body < 0:
            continue
        body_end = _match_brace(code, body)
        if body_end < 0:
            continue
        fn = Function(source, name, m.start(1), body, body_end)
        _scan_body(fn)
        functions.append(fn)
    return functions


def _scan_body(fn):
    """Populate a function's call list and scoped lock acquisitions."""
    code = fn.source.code
    body = code[fn.body_start:fn.body_end]
    for m in CALLISH_RE.finditer(body):
        simple = m.group(1).split("::")[-1].lstrip("~")
        if simple in NOT_A_FUNCTION:
            continue
        fn.calls.append((simple, fn.body_start + m.start(1)))
    for m in GUARD_RE.finditer(body):
        open_paren = fn.body_start + m.end() - 1
        close = _match_paren(code, open_paren)
        if close < 0:
            continue
        label = _lock_label(fn.source, code[open_paren + 1:close - 1])
        if label is None:
            continue
        pos = fn.body_start + m.start()
        fn.acquisitions.append([label, pos, _scope_end(code, fn, pos)])


def _lock_label(source, arg):
    """Normalize a guard constructor argument to a lock identity.  The
    label is qualified by the defining file's stem so same-named member
    locks of unrelated classes (e.g. two `mu_`s) stay distinct, while
    .h/.cc halves of one class share a node."""
    arg = arg.split(",")[0].strip().lstrip("&*")
    arg = re.sub(r"\[[^\]]*\]", "", arg)       # drop index expressions
    m = re.match(r"[A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*)*", arg)
    if m is None:
        return None
    stem = os.path.basename(source.rel)
    stem = stem[:stem.rfind(".")] if "." in stem else stem
    return f"{stem}:{m.group(0)}"


def _scope_end(code, fn, pos):
    """Offset where the scope enclosing `pos` (a guard declaration inside
    fn's body) closes -- the guard's destruction point."""
    depth = 0
    for i in range(pos, fn.body_end):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            if depth == 0:
                return i
            depth -= 1
    return fn.body_end


# --- configuration -------------------------------------------------------


class Config:
    def __init__(self, layers, roots, stops):
        self.layers = layers                   # module -> allowed deps
        self.roots = roots                     # list of (path, name|'*')
        self.stops = stops                     # set of simple names

    @staticmethod
    def load(path):
        with open(path, "rb") as f:
            data = tomllib.load(f)
        layers = {}
        for module, deps in data.get("layers", {}).items():
            layers[module] = set(deps)
        hot = data.get("hot_paths", {})
        roots = []
        for spec in hot.get("roots", []):
            if ":" not in spec:
                raise ValueError(f"bad hot_paths.roots entry '{spec}' "
                                 f"(want 'path:function' or 'path:*')")
            path, name = spec.rsplit(":", 1)
            roots.append((path, name))
        return Config(layers, roots, set(hot.get("stop", [])))


# --- file discovery ------------------------------------------------------


def tu_list_from_compile_commands(root, cc_path):
    """Relative paths of the TUs a configured build actually compiles."""
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    tus = []
    for entry in entries:
        path = entry.get("file", "")
        if not os.path.isabs(path):
            path = os.path.join(entry.get("directory", root), path)
        rel = os.path.relpath(os.path.realpath(path),
                              os.path.realpath(root))
        if not rel.startswith(".."):
            tus.append(rel.replace(os.sep, "/"))
    return sorted(set(tus))


def walk_sources(root):
    files = []
    for scan in SCAN_DIRS:
        top = os.path.join(root, scan)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if d not in EXCLUDED_PARTS
                           and not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(rel.replace(os.sep, "/"))
    return sorted(files)


def resolve_include(root, including_rel, target):
    """Mirror igs_lint's include-hygiene resolution: src/-rooted first,
    then sibling-relative.  Returns a root-relative path or None."""
    cand = os.path.join(root, "src", target)
    if os.path.exists(cand):
        return os.path.relpath(cand, root).replace(os.sep, "/")
    here = os.path.dirname(os.path.join(root, including_rel))
    cand = os.path.join(here, target)
    if os.path.exists(cand):
        return os.path.relpath(cand, root).replace(os.sep, "/")
    return None


# --- the analyzer --------------------------------------------------------


class Analyzer:
    def __init__(self, root, config, tus):
        self.root = root
        self.config = config
        self.findings = []
        self.sources = {}                      # rel -> SourceFile
        self.includes = {}                     # rel -> [(target_rel, line)]
        self._load_closure(tus)
        self.by_name = {}                      # simple name -> [Function]
        for sf in self.sources.values():
            for fn in sf.functions:
                self.by_name.setdefault(fn.name, []).append(fn)

    # -- loading ---------------------------------------------------------

    def _load_closure(self, tus):
        pending = list(tus)
        while pending:
            rel = pending.pop()
            if rel in self.sources or \
                    not os.path.exists(os.path.join(self.root, rel)):
                continue
            try:
                sf = SourceFile(self.root, rel)
            except (OSError, UnicodeDecodeError) as e:
                self.findings.append(Finding(rel, 0, "io", str(e)))
                continue
            self.sources[rel] = sf
            edges = []
            for idx, line in enumerate(sf.raw_lines, start=1):
                m = INCLUDE_RE.match(line)
                if m is None or m.group(1) != '"':
                    continue
                target = resolve_include(self.root, rel, m.group(2))
                if target is not None:
                    edges.append((target, idx))
                    pending.append(target)
            self.includes[rel] = edges

    # -- rule: layer-inversion -------------------------------------------

    def check_layers(self):
        for rel, edges in sorted(self.includes.items()):
            mod = self.sources[rel].module
            allowed = self.config.layers.get(mod)
            for target, line in edges:
                tmod = self.sources[target].module if target in self.sources \
                    else target.split("/")[1] if target.startswith("src/") \
                    else target.split("/")[0]
                if tmod == mod:
                    continue
                if allowed is None:
                    self.findings.append(Finding(
                        rel, line, "layer-inversion",
                        f"module '{mod}' is not declared in "
                        f"tools/layers.toml [layers]"))
                    break
                if "*" in allowed or tmod in allowed:
                    continue
                self.findings.append(Finding(
                    rel, line, "layer-inversion",
                    f"module '{mod}' may not include from '{tmod}' "
                    f"(declared deps: {sorted(allowed) or 'none'}; "
                    f"see tools/layers.toml)"))

    # -- rule: include-cycle ---------------------------------------------

    def check_include_cycles(self):
        graph = {rel: [t for t, _ in edges if t in self.sources]
                 for rel, edges in self.includes.items()}
        for scc in _sccs(graph):
            cyclic = len(scc) > 1 or scc[0] in graph.get(scc[0], [])
            if not cyclic:
                continue
            head = sorted(scc)[0]
            line = next((ln for t, ln in self.includes[head] if t in scc),
                        1)
            self.findings.append(Finding(
                head, line, "include-cycle",
                "include cycle: " + " -> ".join(sorted(scc)) +
                f" -> {sorted(scc)[0]}"))

    # -- rule: lock-order-cycle ------------------------------------------

    def check_lock_order(self):
        # Fixpoint: set of locks each function acquires transitively.
        trans = {fn.key: {a[0] for a in fn.acquisitions}
                 for sf in self.sources.values() for fn in sf.functions}
        funcs = [fn for sf in self.sources.values() for fn in sf.functions]
        changed = True
        while changed:
            changed = False
            for fn in funcs:
                mine = trans[fn.key]
                before = len(mine)
                for callee_name, _pos in fn.calls:
                    if callee_name in self.config.stops:
                        continue
                    for callee in self.by_name.get(callee_name, []):
                        mine |= trans[callee.key]
                if len(mine) != before:
                    changed = True
        # Ordered edges: lock A held at the site where B is acquired,
        # either directly in the same scope or through a call made while
        # A is held.
        edges = {}                             # (a, b) -> example site

        def add_edge(a, b, sf, pos):
            if a != b and (a, b) not in edges:
                edges[(a, b)] = (sf.rel, sf.line_of(pos))

        for fn in funcs:
            for label, pos, scope_end in fn.acquisitions:
                for label2, pos2, _ in fn.acquisitions:
                    if pos < pos2 < scope_end:
                        add_edge(label, label2, fn.source, pos2)
                for callee_name, cpos in fn.calls:
                    if not pos < cpos < scope_end or \
                            callee_name in self.config.stops:
                        continue
                    for callee in self.by_name.get(callee_name, []):
                        for held in trans[callee.key]:
                            add_edge(label, held, fn.source, cpos)
        graph = {}
        for (a, b) in edges:
            graph.setdefault(a, []).append(b)
            graph.setdefault(b, [])
        for scc in _sccs(graph):
            if len(scc) < 2:
                continue
            cycle = sorted(scc)
            sites = sorted({edges[e] for e in edges
                            if e[0] in scc and e[1] in scc})
            where = "; ".join(f"{p}:{l}" for p, l in sites[:4])
            self.findings.append(Finding(
                sites[0][0], sites[0][1], "lock-order-cycle",
                f"locks {{{', '.join(cycle)}}} are acquired in "
                f"conflicting nesting orders (sites: {where}) -- "
                f"concurrent callers can deadlock"))

    # -- rules: hot-path escape analysis ---------------------------------

    def check_hot_paths(self):
        roots = []
        for path, name in self.config.roots:
            sf = self.sources.get(path)
            if sf is None:
                self.findings.append(Finding(
                    path, 0, "hot-path-alloc",
                    f"hot_paths root file '{path}' not found in the "
                    f"analyzed closure (fix tools/layers.toml)"))
                continue
            matched = [fn for fn in sf.functions
                       if name == "*" or fn.name == name]
            if not matched:
                self.findings.append(Finding(
                    path, 0, "hot-path-alloc",
                    f"hot_paths root '{path}:{name}' matches no function "
                    f"definition (fix tools/layers.toml)"))
            roots.extend(matched)

        parent = {}                            # key -> (parent Function|None)
        worklist = []
        for fn in roots:
            if fn.key not in parent:
                parent[fn.key] = None
                worklist.append(fn)
        reached = []
        while worklist:
            fn = worklist.pop()
            reached.append(fn)
            for callee_name, _pos in fn.calls:
                if callee_name in self.config.stops:
                    continue
                for callee in self.by_name.get(callee_name, []):
                    if not callee.source.rel.startswith("src/"):
                        continue               # only src/ functions audited
                    if callee.key not in parent:
                        parent[callee.key] = fn
                        worklist.append(callee)

        self._hot_reached_rels = {fn.source.rel for fn in reached}
        by_key = {fn.key: fn for sf in self.sources.values()
                  for fn in sf.functions}
        seen_lines = set()
        for fn in reached:
            if not fn.source.rel.startswith("src/"):
                continue
            chain = self._chain(fn, parent, by_key)
            start = fn.source.line_of(fn.body_start)
            end = fn.source.line_of(fn.body_end - 1)
            code_lines = fn.source.code.splitlines()
            for lineno in range(start, min(end, len(code_lines)) + 1):
                text = code_lines[lineno - 1]
                self._scan_line(fn, lineno, text, chain, seen_lines)

    def _scan_line(self, fn, lineno, text, chain, seen_lines):
        sf = fn.source
        for pattern, label in HOT_ALLOC_PATTERNS:
            if pattern.search(text):
                if (sf.rel, lineno, "hot-path-alloc") not in seen_lines:
                    seen_lines.add((sf.rel, lineno, "hot-path-alloc"))
                    self.findings.append(Finding(
                        sf.rel, lineno, "hot-path-alloc",
                        f"{label} in '{fn.name}', {chain}"))
                break
        for pattern, label in BLOCK_PATTERNS:
            if pattern.search(text):
                if (sf.rel, lineno, "hot-path-block") not in seen_lines:
                    seen_lines.add((sf.rel, lineno, "hot-path-block"))
                    self.findings.append(Finding(
                        sf.rel, lineno, "hot-path-block",
                        f"{label} in '{fn.name}', {chain}"))
                break
        if THROW_PATTERN.search(text):
            if (sf.rel, lineno, "hot-path-throw") not in seen_lines:
                seen_lines.add((sf.rel, lineno, "hot-path-throw"))
                self.findings.append(Finding(
                    sf.rel, lineno, "hot-path-throw",
                    f"throw in '{fn.name}', {chain}"))

    @staticmethod
    def _chain(fn, parent, by_key):
        names = [fn.name]
        cur = parent.get(fn.key)
        hops = 0
        while cur is not None and hops < 12:
            names.append(cur.name)
            cur = parent.get(cur.key)
            hops += 1
        names.reverse()
        if len(names) == 1:
            return f"a hot-path root"
        return "reachable from hot root via " + " -> ".join(names)

    # -- rule: stale-hot-path-tag ----------------------------------------

    def check_stale_hot_tags(self):
        """An `// IGS_HOT_PATH` tag arms igs_lint's per-line allocation
        checks for the whole file; a tagged file none of whose functions
        appear in the hot-path call graph is either mis-tagged or fell
        out of the roots' reach (typically after a refactor moved the
        kernel) — either way the tag no longer means what it claims.
        Skipped when no [hot_paths] roots are configured (the walk is
        vacuous and every tag would be noise)."""
        if not self.config.roots:
            return
        reached = getattr(self, "_hot_reached_rels", set())
        for rel, sf in sorted(self.sources.items()):
            if not sf.is_hot_tagged or rel in reached:
                continue
            if not rel.startswith("src/"):
                continue
            tag_line = next(
                (i + 1 for i, l in enumerate(sf.raw_lines)
                 if HOT_PATH_TAG.match(l)), 1)
            self.findings.append(Finding(
                rel, tag_line, "stale-hot-path-tag",
                f"'// IGS_HOT_PATH' tag but no function of {rel} is "
                f"reachable from the [hot_paths] roots; retag or add "
                f"the kernel to tools/layers.toml"))

    # -- rule: stale-suppression -----------------------------------------

    def check_stale_suppressions(self, suppressed):
        """`suppressed` is the set of (rel, line, rule) of findings that an
        allow() pragma silenced.  A pragma at line P covers lines P and
        P+1 (igs_lint.is_allowed)."""
        for rel, sf in sorted(self.sources.items()):
            for lineno, comment in sorted(sf.comments.items()):
                for m in ALLOW_PRAGMA.finditer(comment):
                    rule = m.group(1)
                    if rule not in ANALYZER_RULES or \
                            rule == "stale-suppression":
                        continue
                    if m.start() > 0 and comment[m.start() - 1] == "`":
                        continue               # doc prose quoting the syntax
                    used = any((rel, ln, rule) in suppressed
                               for ln in (lineno, lineno + 1))
                    if not used and rule == "hot-path-alloc" and \
                            sf.is_hot_tagged:
                        # igs_lint shares this rule id in IGS_HOT_PATH
                        # files; the pragma stays valid while it still
                        # sits on an allocation site.
                        code_lines = sf.code.splitlines()
                        for ln in (lineno, lineno + 1):
                            if 1 <= ln <= len(code_lines) and any(
                                    p.search(code_lines[ln - 1])
                                    for p, _ in HOT_ALLOC_PATTERNS):
                                used = True
                    if not used:
                        self.findings.append(Finding(
                            rel, lineno, "stale-suppression",
                            f"allow({rule}) pragma suppresses nothing -- "
                            f"remove it or re-audit the site"))

    # -- driver ----------------------------------------------------------

    def run(self):
        self.check_layers()
        self.check_include_cycles()
        self.check_lock_order()
        self.check_hot_paths()
        self.check_stale_hot_tags()
        suppressed = set()
        for f in self.findings:
            if f.rule == "stale-suppression":
                continue
            sf = self.sources.get(f.path)
            if sf is not None and is_allowed(f.rule, f.line, sf.comments):
                f.suppressed = True
                suppressed.add((f.path, f.line, f.rule))
        self.check_stale_suppressions(suppressed)
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings


def _sccs(graph):
    """Tarjan's strongly connected components, iterative."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    result = []
    counter = [0]
    for start in sorted(graph):
        if start in index:
            continue
        work = [(start, iter(sorted(graph.get(start, []))))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, [])))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent_node = work[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                result.append(scc)
    return result


# --- output --------------------------------------------------------------


def write_sarif(path, findings, root):
    # Serialization lives in tools/semantic/sarif.py, shared with
    # igs_semantic.py so both CI artifacts stay structurally identical.
    from semantic import sarif as sarif_shared
    sarif_shared.write_sarif(path, TOOL_NAME, findings, root,
                             RULE_DESCRIPTIONS, ANALYZER_RULES)


# --- self-test -----------------------------------------------------------

# Fixture case directory -> exact {rule: finding count} it must produce.
SELF_TEST_EXPECTATIONS = {
    "layer_inversion": {"layer-inversion": 1},
    "include_cycle": {"include-cycle": 1},
    "lock_order_cycle": {"lock-order-cycle": 2},
    "hot_path_escape": {"hot-path-alloc": 1, "hot-path-block": 1,
                        "hot-path-throw": 1},
    "stale_hot_tag": {"stale-hot-path-tag": 1},
    "stale_suppression": {"stale-suppression": 1},
    "clean_ok": {},
}


def run_case(case_root):
    config = Config.load(os.path.join(case_root, "layers.toml"))
    analyzer = Analyzer(case_root, config, walk_sources(case_root))
    return analyzer.run()


def run_self_test(repo_root):
    fixture_root = os.path.join(repo_root, "tests", "analyzer_fixtures")
    if not os.path.isdir(fixture_root):
        print(f"{TOOL_NAME} self-test: missing {fixture_root}",
              file=sys.stderr)
        return 2
    failures = []
    cases = sorted(d for d in os.listdir(fixture_root)
                   if os.path.isdir(os.path.join(fixture_root, d)))
    for case in cases:
        if case not in SELF_TEST_EXPECTATIONS:
            failures.append(f"unexpected fixture case {case} (add it to "
                            f"SELF_TEST_EXPECTATIONS)")
            continue
        findings = run_case(os.path.join(fixture_root, case))
        got = {}
        for f in findings:
            if not f.suppressed:
                got[f.rule] = got.get(f.rule, 0) + 1
        expected = SELF_TEST_EXPECTATIONS[case]
        if got != expected:
            detail = "; ".join(str(f) for f in findings if not f.suppressed)
            failures.append(f"{case}: expected {expected}, got {got}"
                            + (f" ({detail})" if detail else ""))
    for case in SELF_TEST_EXPECTATIONS:
        if case not in cases:
            failures.append(f"fixture case {case} not found")
    if failures:
        for f in failures:
            print(f"{TOOL_NAME} self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"{TOOL_NAME} self-test OK ({len(cases)} cases, "
          f"{sum(len(v) for v in SELF_TEST_EXPECTATIONS.values())} "
          f"expectations)")
    return 0


# --- main ----------------------------------------------------------------


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for TU discovery "
                             "(default: <root>/build/compile_commands.json "
                             "when present, else a directory walk)")
    parser.add_argument("--layers", default=None,
                        help="layer/hot-path config "
                             "(default: <root>/tools/layers.toml)")
    parser.add_argument("--sarif", default=None,
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--baseline", default=None,
                        help="audited baseline file (default: "
                             "<root>/tools/analysis_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite this tool's baseline section from "
                             "current findings (justifications by review)")
    parser.add_argument("--self-test", action="store_true",
                        help="validate rules against "
                             "tests/analyzer_fixtures")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print scan statistics")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root if args.root is not None
        else os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

    if args.self_test:
        return run_self_test(root)

    layers_path = args.layers or os.path.join(root, "tools", "layers.toml")
    try:
        config = Config.load(layers_path)
    except (OSError, ValueError, tomllib.TOMLDecodeError) as e:
        print(f"{TOOL_NAME}: cannot load {layers_path}: {e}",
              file=sys.stderr)
        return 2

    cc_path = args.compile_commands or \
        os.path.join(root, "build", "compile_commands.json")
    if os.path.exists(cc_path):
        tus = tu_list_from_compile_commands(root, cc_path)
        mode = f"compile_commands ({cc_path})"
    else:
        if args.compile_commands:
            print(f"{TOOL_NAME}: {cc_path} not found", file=sys.stderr)
            return 2
        tus = walk_sources(root)
        mode = "directory walk (no compile_commands.json found)"

    analyzer = Analyzer(root, config, tus)
    findings = analyzer.run()

    from semantic import baseline
    baseline_path = args.baseline or \
        os.path.join(root, "tools", "analysis_baseline.json")
    if args.update_baseline:
        baseline.write_template(baseline_path, findings, tool=TOOL_NAME)
        print(f"{TOOL_NAME}: baseline section written to {baseline_path}")
        return 0
    entries = baseline.load(baseline_path, tool=TOOL_NAME)
    findings.extend(baseline.apply(
        findings, entries, os.path.relpath(baseline_path, root)))

    unsuppressed = [f for f in findings
                    if not f.suppressed and not f.baselined]
    n_suppressed = len(findings) - len(unsuppressed)

    if args.verbose:
        n_funcs = sum(len(sf.functions) for sf in analyzer.sources.values())
        print(f"{TOOL_NAME}: TU discovery via {mode}")
        print(f"{TOOL_NAME}: {len(analyzer.sources)} files, "
              f"{n_funcs} functions, {n_suppressed} suppressed finding(s)")
    for f in unsuppressed:
        print(f)
    if args.sarif:
        write_sarif(args.sarif, findings, root)
    if unsuppressed:
        print(f"{TOOL_NAME}: {len(unsuppressed)} unsuppressed finding(s) "
              f"in {len({f.path for f in unsuppressed})} file(s) "
              f"({len(analyzer.sources)} analyzed)", file=sys.stderr)
        return 1
    print(f"{TOOL_NAME}: OK ({len(analyzer.sources)} files analyzed, "
          f"{n_suppressed} audited suppression(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
