"""Interprocedural dataflow passes of igs_dataflow (DESIGN.md §15).

Each pass module exposes `run(model, config, findings)` over the same
parsed Model the semantic tier builds (tools/semantic/), where `config`
is the parsed tools/layers.toml document.  Three pass families:

  roles        epoch-ownership protocol verification: infer thread roles
               from compute registrations and in-member thread spawns,
               then prove the compute-role call graph never reaches a
               live-graph mutator or a non-snapshot read path.
  publication  atomic publication pairing: match release stores to
               acquire loads on the same object and flag relaxed writes
               feeding cross-thread publication.
  intervals    value-range / narrowing analysis on the [hot_paths] root
               files: provable uint32 overflow and unguarded wide->narrow
               casts.

Abstract domains and soundness caveats are documented in DESIGN.md §15;
everything repo-specific the passes need lives under [dataflow.*] in
tools/layers.toml.
"""
