"""Value-range / narrowing analysis on the [hot_paths] root files.

The hot kernels index with `VertexId`/uint32 run offsets (PR 1's radix
pipeline, the hybrid store's dense-array indices) while the surrounding
math runs in `size_t`/uint64.  Every `static_cast` to a narrow unsigned
type is therefore a proof obligation:

  interval domain  flow-insensitive per file.  A guard-macro call
                   (`IGS_CHECK(n <= std::numeric_limits<uint32_t>::
                   max())`, [dataflow.intervals].guard_macros)
                   establishes an upper-bound fact for its left-hand
                   expression, keyed by normalized spelling, valid
                   file-wide (the repo guards at entry points and casts
                   downstream — see the soundness caveats in DESIGN.md
                   §15).  A local initialized from an integer literal
                   gets a constant interval.
  obligations      `static_cast<N>(e)` where N is uint8/16/32_t or a
                   [dataflow.intervals].narrow_aliases alias, and e is
                   a single identifier of a [dataflow.intervals]
                   .wide_types type, a `.size()` chain, or a literal.
                   Operands whose declared type cannot be established
                   (pointer differences, mixed arithmetic) are skipped —
                   over-approximating them would drown the signal.

Rules:
  narrowing-overflow   the operand's interval provably exceeds the
                       target's maximum (constant propagation) — always
                       a bug.
  unproven-narrowing   a wide operand with no dominating guard fact and
                       no constant bound: either add the guard or audit
                       the invariant with an allow() pragma.
"""

import fnmatch

from semantic import ast_lite
from semantic.cpp_lexer import match_angle, match_delim
from semantic.passes import add

_BUILTIN_NARROW = {"uint8_t": 255, "uint16_t": 65535,
                   "uint32_t": 4294967295}
_LIMIT_MAX = {"uint8_t": 255, "uint16_t": 65535,
              "uint32_t": 4294967295, "uint64_t": 2**64 - 1,
              "size_t": 2**64 - 1, "int32_t": 2**31 - 1,
              "int64_t": 2**63 - 1}


def run(model, config, findings):
    cfg = config.get("dataflow", {}).get("intervals", {})
    narrow = dict(_BUILTIN_NARROW)
    for alias, mx in cfg.get("narrow_aliases", {}).items():
        narrow[alias] = int(mx)
    wide = set(cfg.get("wide_types", ())) | {"size_t", "uint64_t"}
    guards = set(cfg.get("guard_macros", ("IGS_CHECK", "IGS_CHECK_MSG",
                                          "IGS_DCHECK")))
    root_files = _root_files(model, config.get("hot_paths", {})
                             .get("roots", ()))
    for rel in sorted(root_files):
        fm = model.files[rel]
        facts = _guard_facts(fm.tokens, guards, narrow)
        for fn in model.functions:
            if fn.file is not fm or fn.body is None:
                continue
            _check_function(fn, facts, narrow, wide, findings)


def _root_files(model, roots):
    out = set()
    for spec in roots:
        path, _, _name = spec.rpartition(":")
        for rel in model.files:
            if rel == path or fnmatch.fnmatch(rel, path):
                out.add(rel)
    return out


def _norm(toks):
    return "".join(t.text for t in toks)


def _literal(text):
    t = text.replace("'", "").rstrip("uUlLzZ")
    try:
        return int(t, 0)
    except ValueError:
        return None


def _guard_facts(toks, guards, narrow):
    """{normalized lhs expression: proven upper bound} from guard-macro
    calls across the whole file (strongest bound wins)."""
    facts = {}
    for c in ast_lite.iter_calls(toks, 0, len(toks)):
        if c.name not in guards:
            continue
        cond = _first_arg(toks, c.arg_lo, c.arg_hi)
        bound_kind, lhs, rhs = _split_cmp(cond)
        if lhs is None:
            continue
        bound = _rhs_bound(rhs)
        if bound is None:
            continue
        if bound_kind == "<":
            bound -= 1
        key = _norm(lhs)
        if key:
            facts[key] = min(facts.get(key, bound), bound)
    return facts


def _first_arg(toks, lo, hi):
    """Tokens of the first top-level argument (guard condition)."""
    depth = 0
    out = []
    for k in range(lo, hi):
        t = toks[k]
        if t.kind == "punct":
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            elif t.text == "," and depth == 0:
                break
        out.append(t)
    return out


def _split_cmp(cond):
    """('<=' | '<', lhs tokens, rhs tokens) at the top level of a guard
    condition, or (None, None, None)."""
    depth = 0
    for j, t in enumerate(cond):
        if t.kind != "punct":
            continue
        if t.text in ("(", "[", "{", "<") and j and \
                cond[j - 1].kind == "id" and t.text == "<" and \
                cond[j - 1].text in ("numeric_limits", "max", "min",
                                     "vector", "array"):
            depth += 1
        elif t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}", ">") and depth > 0:
            depth -= 1
        elif t.text == ">>" and depth > 0:
            depth -= 2
        elif depth == 0 and t.text in ("<=", "<"):
            return t.text, cond[:j], cond[j + 1:]
    return None, None, None


def _rhs_bound(rhs):
    """Value of the guard's right-hand side: an integer literal, or the
    max() of a known-width numeric_limits instantiation."""
    if len(rhs) == 1 and rhs[0].kind == "num":
        return _literal(rhs[0].text)
    ids = [t.text for t in rhs if t.kind == "id"]
    if "max" in ids and "numeric_limits" in ids:
        for name in ids:
            if name in _LIMIT_MAX:
                return _LIMIT_MAX[name]
    return None


def _check_function(fn, facts, narrow, wide, findings):
    toks = fn.file.tokens
    lo, hi = fn.body
    locals_ = None
    k = lo
    while k < hi:
        t = toks[k]
        if not (t.kind == "id" and t.text == "static_cast" and
                k + 1 < hi and toks[k + 1].text == "<"):
            k += 1
            continue
        close = match_angle(toks, k + 1)
        if close < 0 or close + 1 >= hi or toks[close + 1].text != "(":
            k += 1
            continue
        pclose = match_delim(toks, close + 1, "(", ")")
        if pclose < 0:
            k += 1
            continue
        target_ids = [x.text for x in toks[k + 2:close] if x.kind == "id"]
        target = target_ids[-1] if target_ids else ""
        if target not in narrow:
            k = pclose + 1
            continue
        if locals_ is None:
            locals_ = list(ast_lite.iter_locals(toks, lo, hi))
        _check_cast(fn, toks[close + 2:pclose], target, narrow[target],
                    t.line, facts, locals_, wide, findings)
        k = pclose + 1


def _check_cast(fn, operand, target, target_max, line, facts, locals_,
                wide, findings):
    if not operand:
        return
    key = _norm(operand)
    # 1. Literal operand: decide exactly.
    if len(operand) == 1 and operand[0].kind == "num":
        value = _literal(operand[0].text)
        if value is not None and value > target_max:
            add(findings, fn.file, line, "narrowing-overflow",
                f"static_cast<{target}>({key}) provably overflows: "
                f"{value} > {target_max} in '{fn.qual_name}'")
        return
    # 2. Single identifier of wide type.
    if len(operand) == 1 and operand[0].kind == "id":
        name = operand[0].text
        decl = _decl_of(fn, locals_, name)
        if decl is None:
            return                  # type unknown: out of the domain
        type_base, init = decl
        if type_base not in wide:
            return                  # already narrow or non-integer
        if init is not None and _mutated(fn, name):
            init = None             # accumulator: initializer is no bound
        if init is not None:
            value = _literal(init)
            if value is not None:
                if value > target_max:
                    add(findings, fn.file, line, "narrowing-overflow",
                        f"static_cast<{target}>({name}) provably "
                        f"overflows: '{name}' is {value} (initialized "
                        f"line-locally) > {target_max} in "
                        f"'{fn.qual_name}'")
                return              # constant interval decided either way
        if facts.get(name, target_max + 1) <= target_max:
            return                  # guard fact proves the cast
        add(findings, fn.file, line, "unproven-narrowing",
            f"static_cast<{target}>({name}) narrows {type_base} with no "
            f"dominating guard; add IGS_CHECK({name} <= "
            f"std::numeric_limits<std::{target}>::max()) or audit with "
            f"an allow() pragma in '{fn.qual_name}'")
        return
    # 3. `expr.size()` chain: size_t-wide by construction.
    if len(operand) >= 4 and operand[-1].text == ")" and \
            operand[-2].text == "(" and operand[-3].text == "size" and \
            operand[-4].text in (".", "->"):
        if facts.get(key, target_max + 1) <= target_max:
            return
        add(findings, fn.file, line, "unproven-narrowing",
            f"static_cast<{target}>({key}) narrows a size_t container "
            f"size with no dominating guard; add IGS_CHECK({key} <= "
            f"std::numeric_limits<std::{target}>::max()) or audit with "
            f"an allow() pragma in '{fn.qual_name}'")
    # Anything else (arithmetic, pointer differences) is outside the
    # abstract domain: skipped, see DESIGN.md §15.


_MUTATORS = frozenset({"=", "+=", "-=", "*=", "/=", "++", "--"})


def _mutated(fn, name):
    """True when `name` is written after its declaration anywhere in the
    function body (so a literal initializer is not a constant bound)."""
    toks = fn.file.tokens
    lo, hi = fn.body
    seen_decl = False
    for k in range(lo, hi):
        t = toks[k]
        if t.kind != "id" or t.text != name:
            continue
        if not seen_decl:
            seen_decl = True        # first sighting: the declaration
            continue
        if k + 1 < hi and toks[k + 1].kind == "punct" and \
                toks[k + 1].text in _MUTATORS:
            return True
        if k > lo and toks[k - 1].kind == "punct" and \
                toks[k - 1].text in ("++", "--"):
            return True
    return False


def _decl_of(fn, locals_, name):
    """(type_base, literal initializer text or None) for an identifier:
    local, parameter, or enclosing-class field."""
    for v in locals_:
        if v.name == name:
            toks = fn.file.tokens
            init = None
            # `= <num> ;` or `{<num>}` / `(<num>)` initializers
            span = toks[v.init_lo:v.init_hi]
            nums = [t for t in span if t.kind == "num"]
            ids = [t for t in span if t.kind == "id"]
            if len(nums) == 1 and not ids:
                init = nums[0].text
            return (v.type_base, init)
    for tb, pname, _full in fn.params:
        if pname == name:
            return (tb, None)
    if fn.cls is not None and name in fn.cls.fields:
        return (fn.cls.fields[name], None)
    return None
