"""Atomic publication pairing (release/acquire edge verification).

Epoch publication is a release/acquire protocol (DESIGN.md §11): the
update stage release-stores a flag/epoch after making the snapshot
visible and the compute stage acquire-loads it before reading.  TSan
only checks the interleavings a given run happens to schedule; this pass
checks the *protocol* statically:

  object model   every `std::atomic`/`std::atomic_flag` class field
                 (keyed `Class::field`) or local is one abstract object.
                 Atomics reaching a function through parameters or
                 computed expressions are skipped — cross-function
                 aliasing is out of scope (documented caveat, DESIGN.md
                 §15).
  op model       member calls load/store/exchange/fetch_*/
                 compare_exchange_*/test_and_set/test/clear, with the
                 memory order parsed from the argument list (no explicit
                 order == seq_cst).  RMW ops count on both sides of the
                 edge.
  publication    an object is a *publication object* when any of its ops
                 carries an ordering at-or-above acquire/release.
                 All-relaxed objects (telemetry counters, statistics)
                 are plain shared counters and stay exempt.

Rules:
  unpaired-release-store   release-side op with release(+)/seq_cst order
                           but no acquire-side observer on the same
                           object anywhere in src/ — one-sided edge.
  unpaired-acquire-load    acquire-side op with acquire(+)/seq_cst order
                           but no release-side producer — ditto.
  relaxed-publication-store  a relaxed *write* on a publication object:
                           it can be reordered past the object's release
                           edge.  Relaxed loads (spin-hints before the
                           acquire retry) are idiomatic and exempt.

Each finding names the `check_matrix.sh` TSan leg whose schedule
deep-run exercises the same interleavings ([dataflow.publication]).
"""

from semantic import ast_lite
from semantic.passes import add

LOAD_OPS = frozenset({"load", "test"})
STORE_OPS = frozenset({"store", "clear"})
RMW_OPS = frozenset({"exchange", "fetch_add", "fetch_sub", "fetch_and",
                     "fetch_or", "fetch_xor", "test_and_set",
                     "compare_exchange_weak", "compare_exchange_strong"})
ATOMIC_OPS = LOAD_OPS | STORE_OPS | RMW_OPS
ATOMIC_TYPES = frozenset({"atomic", "atomic_flag"})

_RANK = {"relaxed": 0, "consume": 1, "acquire": 2, "release": 2,
         "acq_rel": 3, "seq_cst": 4}
_ACQ = frozenset({"consume", "acquire", "acq_rel", "seq_cst"})
_REL = frozenset({"release", "acq_rel", "seq_cst"})


class _Op:
    __slots__ = ("fm", "line", "name", "order", "fn")

    def __init__(self, fm, line, name, order, fn):
        self.fm = fm
        self.line = line
        self.name = name
        self.order = order
        self.fn = fn


def run(model, config, findings):
    cfg = config.get("dataflow", {}).get("publication", {})
    legs = cfg.get("tsan_legs", {})
    default_leg = cfg.get("default_leg", "tsan")

    objects = {}                # key -> (label, [_Op])
    for fn in model.functions:
        if fn.body is None or not fn.file.rel.startswith("src/"):
            continue
        toks = fn.file.tokens
        local_types = None
        for c in ast_lite.iter_calls(toks, *fn.body):
            if c.name not in ATOMIC_OPS or c.receiver is None or \
                    c.receiver == "<expr>":
                continue
            key = label = None
            if fn.cls is not None and c.receiver in fn.cls.fields:
                if fn.cls.fields[c.receiver] in ATOMIC_TYPES:
                    key = f"{fn.cls.qual}::{c.receiver}"
                    label = f"'{fn.cls.name}::{c.receiver}'"
            else:
                if local_types is None:
                    local_types = {v.name: v.type_base for v in
                                   ast_lite.iter_locals(toks, *fn.body)}
                if local_types.get(c.receiver) in ATOMIC_TYPES:
                    key = f"{fn.key}::{c.receiver}"
                    label = f"local '{c.receiver}' in '{fn.qual_name}'"
            if key is None:
                continue
            order = _parse_order(toks, c.arg_lo, c.arg_hi)
            objects.setdefault(key, (label, []))[1].append(
                _Op(fn.file, c.line, c.name, order, fn))

    for key in sorted(objects):
        label, ops = objects[key]
        _check_object(label, ops, legs, default_leg, findings)


def _parse_order(toks, lo, hi):
    """Strongest memory order named in an argument range; seq_cst when
    none is spelled (the C++ default)."""
    orders = []
    k = lo
    while k < hi:
        t = toks[k]
        if t.kind == "id":
            if t.text.startswith("memory_order_"):
                orders.append(t.text[len("memory_order_"):])
            elif t.text == "memory_order":
                # std::memory_order::release spelling
                for q in range(k + 1, min(k + 3, hi)):
                    if toks[q].kind == "id":
                        orders.append(toks[q].text)
                        break
        k += 1
    orders = [o for o in orders if o in _RANK]
    if not orders:
        return "seq_cst"
    return max(orders, key=lambda o: _RANK[o])


def _check_object(label, ops, legs, default_leg, findings):
    rel_side = [op for op in ops if op.name in STORE_OPS | RMW_OPS]
    acq_side = [op for op in ops if op.name in LOAD_OPS | RMW_OPS]
    rel_strong = [op for op in rel_side if op.order in _REL]
    acq_strong = [op for op in acq_side if op.order in _ACQ]
    if not rel_strong and not acq_strong:
        return                      # all-relaxed counter: not publication
    leg0 = _leg(ops[0].fm.rel, legs, default_leg)
    if rel_strong and not acq_strong:
        for op in rel_strong:
            add(findings, op.fm, op.line, "unpaired-release-store",
                f"release-ordered '{op.name}({op.order})' on {label} has "
                f"no acquire-side observer anywhere in src/; the "
                f"publication edge is one-sided (cross-check with "
                f"`tools/check_matrix.sh {_leg(op.fm.rel, legs, default_leg)}`)")
    if acq_strong and not rel_strong:
        for op in acq_strong:
            add(findings, op.fm, op.line, "unpaired-acquire-load",
                f"acquire-ordered '{op.name}({op.order})' on {label} has "
                f"no release-side producer anywhere in src/; the "
                f"publication edge is one-sided (cross-check with "
                f"`tools/check_matrix.sh {_leg(op.fm.rel, legs, default_leg)}`)")
    for op in rel_side:
        if op.order == "relaxed":
            strong = rel_strong[0] if rel_strong else acq_strong[0]
            add(findings, op.fm, op.line, "relaxed-publication-store",
                f"relaxed '{op.name}()' writes publication object "
                f"{label} (which carries a "
                f"{strong.order}-ordered '{strong.name}' at "
                f"{strong.fm.rel}:{strong.line}); a relaxed write can be "
                f"reordered past the release edge (cross-check with "
                f"`tools/check_matrix.sh {leg0}`)")


def _leg(rel, legs, default_leg):
    best = None
    for prefix, leg in legs.items():
        if rel.startswith(prefix) and \
                (best is None or len(prefix) > len(best[0])):
            best = (prefix, leg)
    return best[1] if best else default_leg
