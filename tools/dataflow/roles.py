"""Epoch-ownership protocol verification (whole-program role analysis).

DESIGN.md §11 splits every thread into one of two roles: *update* (owns
the live graph, runs the ingest/publish path) and *compute* (runs the
registered analytics callable overlapped with the next epoch's updates,
and may only read `SnapshotView`/`DirtySetView` state).  The local
`compute-reads-live` semantic rule checks the registered lambda's own
body; this pass turns it into a whole-program proof:

  1. Role inference.  Compute-role entry points are (a) the lambda
     arguments of `[dataflow.roles].compute_registrars` calls
     (`set_compute` / `attach`), and (b) lambdas handed to a
     `std::thread` constructed inside a member of an
     `[dataflow.roles].engine_classes` class (the pipeline's in-flight
     compute spawn in publish_epoch).  Engine-spawned entries fork once
     per backend bound by the engine's explicit instantiations (the
     PR 7 binding), so every finding is attributed `[backend: X]`.
  2. Reachability.  A worklist walk follows receiver-typed member calls,
     class-qualified static calls, and name-distinct free functions
     (same resolution rules as the semantic hot-path pass), pruning the
     [hot_paths].stop setup-only sinks.
  3. Verdicts.  Inside the compute-role cone, any call to a
     [semantic.lifetime].live_mutators member is `compute-role-mutates-
     live`; any [dataflow.roles].live_read_members call whose receiver
     provably types to a configured backend class is `compute-role-
     reads-live` (receivers typed as views or unbound graph template
     parameters are the sanctioned snapshot inputs).
  4. Coverage.  Every `[semantic.backends.*]` entry with
     engine_backend=true must be bound by some engine-class
     instantiation, else `backend-role-coverage` fires — a backend the
     role proof cannot see is a backend the protocol does not cover.

The inferred role assignment is exported as `model.role_matrix` for the
CI artifact (--matrix).
"""

from semantic import ast_lite
from semantic.model import Finding
from semantic.passes import add
from semantic.passes.hot_path import _arg_backend, _label, \
    _receiver_class_name, _seed_bindings


def run(model, config, findings):
    cfg = config.get("dataflow", {}).get("roles", {})
    sem = config.get("semantic", {})
    life = sem.get("lifetime", {})
    backends_cfg = sem.get("backends", {})
    engine_classes = set(cfg.get("engine_classes", ()))
    registrars = set(cfg.get("compute_registrars", ())) or \
        set(life.get("compute_registrars", ()))
    live_reads = set(cfg.get("live_read_members", ()))
    view_types = set(cfg.get("view_types", ())) | \
        set(life.get("view_types", ()))
    mutators = set(life.get("live_mutators", ()))
    graph_params = set(sem.get("graph_param_names", ()))
    stop = set(config.get("hot_paths", {}).get("stop", ()))

    backends = {}
    for name in backends_cfg:
        ci = model.find_class(name)
        if ci is not None:
            backends[name] = ci

    # Instantiation bindings: template class X<Backend> binds X's graph
    # parameter to Backend for members of X (explicit and field-implied).
    inst_bindings = {}
    engine_sites = {}           # backend -> ["file:line", ...]
    for inst in model.instantiations:
        ci = model.find_class(inst.class_name)
        if ci is None or not ci.template_params:
            continue
        for arg in inst.args:
            base = arg.split("<")[0].split("::")[-1]
            if base in backends_cfg:
                inst_bindings.setdefault(ci.name, set()).add(base)
                if inst.class_name in engine_classes:
                    engine_sites.setdefault(base, []).append(
                        f"{inst.file.rel}:{inst.line}")

    _check_coverage(model, backends_cfg, backends, engine_classes,
                    engine_sites, findings)

    entries, spawn_sites = _entry_points(
        model, registrars, engine_classes, graph_params, backends,
        inst_bindings)

    reached = {}                # backend label -> set of function keys
    emitted = set()
    seen = set()
    work = list(entries)
    while work:
        ctx, lo, hi, binding, label, origin = work.pop()
        key = (ctx.key, lo, hi, tuple(sorted(binding.items())), label)
        if key in seen:
            continue
        seen.add(key)
        reached.setdefault(label, set()).add(ctx.key)
        if not ctx.file.rel.startswith("src/"):
            continue
        toks = ctx.file.tokens
        for c in ast_lite.iter_calls(toks, lo, hi):
            rcls = _receiver_class_name(model, ctx, binding, c.receiver)
            if c.name in mutators and c.receiver is not None and \
                    rcls not in view_types:
                _emit(findings, emitted, ctx.file, c.line,
                      "compute-role-mutates-live", label,
                      f"compute-role code (entered via {origin}) calls "
                      f"live-graph mutator '{_recv(c)}{c.name}()'; the "
                      f"compute round overlaps the next epoch's updates "
                      f"and must never mutate live adjacency state")
            elif c.name in live_reads and rcls in backends:
                _emit(findings, emitted, ctx.file, c.line,
                      "compute-role-reads-live", label,
                      f"compute-role code (entered via {origin}) reads "
                      f"live backend state '{_recv(c)}{c.name}()' "
                      f"(receiver types to {rcls}); only SnapshotView/"
                      f"DirtySetView reads are race-free here")
            if c.name in stop:
                continue
            for tf, tb in _resolve(model, ctx, binding, c):
                if tf.body is None:
                    continue
                tparams = set(tf.template_params)
                if tf.cls is not None:
                    tparams |= set(tf.cls.template_params)
                gp = tparams & graph_params
                if gp and not tb:
                    bound = _arg_backend(model, ctx, binding, c)
                    if bound:
                        tb = {p: bound for p in gp}
                work.append((tf, tf.body[0], tf.body[1], tb,
                             label or _label(tb),
                             f"'{tf.qual_name}' <- {origin}"
                             if len(origin) < 120 else origin))

    model.role_matrix = _matrix(backends_cfg, engine_sites, entries,
                                spawn_sites, reached)


def _recv(call):
    if call.receiver and call.receiver != "<expr>":
        return f"{call.receiver}."
    if call.qualifier:
        return f"{call.qualifier}::"
    return ""


def _emit(findings, emitted, fm, line, rule, label, message):
    key = (fm.rel, line, rule, label)
    if key in emitted:
        return
    emitted.add(key)
    suffix = f" [backend: {label}]" if label else ""
    add(findings, fm, line, rule, message + suffix)


def _check_coverage(model, backends_cfg, backends, engine_classes,
                    engine_sites, findings):
    for name, bcfg in sorted(backends_cfg.items()):
        if not isinstance(bcfg, dict) or \
                not bcfg.get("engine_backend", False):
            continue
        if engine_sites.get(name):
            continue
        engines = ", ".join(sorted(engine_classes)) or "engine"
        msg = (f"backend '{name}' declares engine_backend=true but no "
               f"{engines} instantiation binds it; the compute-role "
               f"proof does not cover this backend")
        header = bcfg.get("header", "")
        fm = model.files.get(header)
        line = backends[name].line if name in backends else 1
        if fm is not None:
            add(findings, fm, line, "backend-role-coverage", msg)
        else:
            findings.append(Finding(header or name, 1,
                                    "backend-role-coverage", msg))


def _entry_points(model, registrars, engine_classes, graph_params,
                  backends, inst_bindings):
    """[(ctx_fn, lo, hi, binding, backend_label, origin)] compute-role
    entries, plus the update-role thread spawn sites for the matrix."""
    entries = []
    spawn_sites = []
    for fn in model.functions:
        if fn.body is None or not fn.file.rel.startswith("src/"):
            continue
        toks = fn.file.tokens
        for c in ast_lite.iter_calls(toks, *fn.body):
            if c.name in registrars:
                for lam in ast_lite.iter_lambdas(toks, c.arg_lo,
                                                 c.arg_hi + 1):
                    origin = (f"{c.name}() registration at "
                              f"{fn.file.rel}:{c.line}")
                    for binding in _seed_bindings(fn, graph_params,
                                                  backends,
                                                  inst_bindings):
                        entries.append((fn, lam.body_lo, lam.body_hi,
                                        binding, _label(binding), origin))
            elif c.name == "thread" and fn.cls is not None:
                lams = list(ast_lite.iter_lambdas(toks, c.arg_lo,
                                                  c.arg_hi + 1))
                if not lams:
                    continue
                site = f"{fn.file.rel}:{c.line}"
                if fn.cls.name not in engine_classes:
                    spawn_sites.append(
                        {"site": site, "in": fn.qual_name,
                         "role": "update"})
                    continue
                spawn_sites.append({"site": site, "in": fn.qual_name,
                                    "role": "compute-spawn"})
                origin = (f"std::thread spawn in '{fn.qual_name}' at "
                          f"{site}")
                gp = set(fn.cls.template_params) & graph_params
                names = sorted(inst_bindings.get(fn.cls.name) or
                               backends)
                for b in names or [""]:
                    binding = {p: b for p in gp} if b else {}
                    for lam in lams:
                        entries.append((fn, lam.body_lo, lam.body_hi,
                                        binding, b, origin))
    return entries, spawn_sites


def _resolve(model, ctx, binding, call):
    """[(FunctionInfo, new_binding)] candidate targets of a call, in
    decreasing confidence: receiver-typed members, class-qualified
    statics, own-class members, name-distinct src free functions."""
    out = []
    rcls = _receiver_class_name(model, ctx, binding, call.receiver)
    if rcls is not None:
        ci = model.find_class(rcls)
        if ci is not None:
            for tf in ci.members.get(call.name, ()):
                out.append((tf, {}))
        return out
    if call.receiver is not None:
        return out                  # unattributable expression receiver
    if call.qualifier is not None:
        ci = model.find_class(call.qualifier.split("::")[-1])
        if ci is not None:
            for tf in ci.members.get(call.name, ()):
                out.append((tf, {}))
            return out
        for tf in model.by_name.get(call.name, ()):
            if tf.cls is None and tf.file.rel.startswith("src/"):
                out.append((tf, {}))
        return out
    if ctx.cls is not None and call.name in ctx.cls.members:
        for tf in ctx.cls.members[call.name]:
            out.append((tf, dict(binding)))
        return out
    for tf in model.by_name.get(call.name, ()):
        if tf.cls is None and tf.file.rel.startswith("src/"):
            out.append((tf, {}))
    return out


def _matrix(backends_cfg, engine_sites, entries, spawn_sites, reached):
    backends = {}
    for name, bcfg in sorted(backends_cfg.items()):
        if not isinstance(bcfg, dict):
            continue
        backends[name] = {
            "engine_backend": bool(bcfg.get("engine_backend", False)),
            "role_coverage": bool(engine_sites.get(name)),
            "instantiation_sites": sorted(set(engine_sites.get(name,
                                                               ()))),
        }
    seen_entries = []
    dedup = set()
    for ctx, _lo, _hi, _binding, label, origin in entries:
        key = (origin, label)
        if key in dedup:
            continue
        dedup.add(key)
        seen_entries.append({"origin": origin, "backend": label or None})
    return {
        "backends": backends,
        "compute_entry_points": seen_entries,
        "compute_reached_functions": {
            (label or "<unbound>"): sorted(keys)
            for label, keys in sorted(reached.items())},
        "thread_spawn_sites": spawn_sites,
    }
